// Package core implements the CPU-side architectural layer of the Virtual
// Block Interface: memory clients (§4.1.2), the per-client Client–VB Tables
// (CVTs) holding access permissions, the per-core direct-mapped CVT cache
// (§4.3), the new instructions (attach, detach, enable_vb, disable_vb,
// clone_vb, promote_vb), and the two-part {CVT index, offset} virtual
// addresses programs use (§4.2.2), including CVT-relative addressing for
// shared libraries (§4.4).
//
// VBI decouples protection from translation: the CPU checks permissions
// against the CVT before every access and forms a globally-unique VBI
// address that indexes the on-chip caches directly; translation is deferred
// to the MTL at the memory controller (§3.2, §3.3).
package core

import (
	"errors"
	"fmt"

	"vbi/internal/addr"
	"vbi/internal/mtl"
	"vbi/internal/phys"
	"vbi/internal/prop"
	"vbi/internal/tlb"
)

// ClientID identifies a memory client system-wide. The reference
// implementation uses 16-bit client IDs, supporting 2^16 clients (§4.1.2).
type ClientID uint16

// MaxClients is the number of client IDs (an architectural parameter
// exposed to the OS, §4.1.2).
const MaxClients = 1 << 16

// KernelClient is the client ID of the OS itself.
const KernelClient ClientID = 0

// Perm is the three-bit read-write-execute permission field of a CVT entry.
type Perm uint8

// Permission bits.
const (
	PermX Perm = 1 << iota
	PermW
	PermR

	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'R'
	}
	if p&PermW != 0 {
		b[1] = 'W'
	}
	if p&PermX != 0 {
		b[2] = 'X'
	}
	return string(b)
}

// CVTEntry is one row of a Client–VB Table: a valid bit, the VBUID, and the
// RWX permissions with which the client may access that VB (§4.1.2).
type CVTEntry struct {
	Valid bool
	VB    addr.VBUID
	Perm  Perm
}

// cvtEntryBase is the reserved physical region holding the CVTs; the
// processor maintains each client's CVT location there (§4.1.2). Entries
// are 64 bytes apart so distinct indices never share a line.
const cvtEntryBase = uint64(1) << 44

// CVTEntryAddr returns the physical address of a CVT entry, which the
// timing model charges on a CVT-cache miss.
func CVTEntryAddr(c ClientID, index int) phys.Addr {
	return phys.Addr(cvtEntryBase | uint64(c)<<26 | uint64(index)*64)
}

// Access faults, modelled as errors.
var (
	ErrBadIndex      = errors.New("vbi: CVT index out of range")
	ErrInvalidEntry  = errors.New("vbi: invalid CVT entry")
	ErrNoPermission  = errors.New("vbi: access permission violation")
	ErrOutOfBounds   = errors.New("vbi: offset beyond VB size")
	ErrUnknownClient = errors.New("vbi: unknown client")
)

// System is the architectural VBI state shared by all cores: the MTL and
// the per-client CVTs.
type System struct {
	MTL  *mtl.MTL
	cvts map[ClientID][]CVTEntry
}

// NewSystem wires the architectural layer over an MTL.
func NewSystem(m *mtl.MTL) *System {
	return &System{MTL: m, cvts: make(map[ClientID][]CVTEntry)}
}

// RegisterClient makes a client ID usable (process creation assigns one,
// §4.4).
func (s *System) RegisterClient(c ClientID) {
	if _, ok := s.cvts[c]; !ok {
		s.cvts[c] = nil
	}
}

// ReleaseClient frees a client ID for reuse (process destruction). The
// caller must have detached all VBs first.
func (s *System) ReleaseClient(c ClientID) {
	delete(s.cvts, c)
}

// CVT returns a copy of the client's table (for the OS and tests).
func (s *System) CVT(c ClientID) ([]CVTEntry, error) {
	t, ok := s.cvts[c]
	if !ok {
		return nil, ErrUnknownClient
	}
	out := make([]CVTEntry, len(t))
	copy(out, t)
	return out, nil
}

// EnableVB executes the enable_vb instruction (§4.2).
func (s *System) EnableVB(u addr.VBUID, p prop.Props) error {
	return s.MTL.Enable(u, p)
}

// DisableVB executes disable_vb (§4.2.4). Lazy cache cleanup is the
// simulator layer's duty (it invalidates the VB's lines on reuse).
func (s *System) DisableVB(u addr.VBUID) error {
	return s.MTL.Disable(u)
}

// Attach executes the attach instruction: it adds an entry for the VB in
// the client's CVT with the given permissions (reusing an invalid slot or
// appending), increments the VB's reference count, and returns the CVT
// index (§4.1.2).
func (s *System) Attach(c ClientID, u addr.VBUID, p Perm) (int, error) {
	t, ok := s.cvts[c]
	if !ok {
		return 0, ErrUnknownClient
	}
	if !s.MTL.Enabled(u) {
		return 0, fmt.Errorf("vbi: attach of disabled %v", u)
	}
	if err := s.MTL.IncRef(u); err != nil {
		return 0, err
	}
	for i := range t {
		if !t[i].Valid {
			t[i] = CVTEntry{Valid: true, VB: u, Perm: p}
			return i, nil
		}
	}
	s.cvts[c] = append(t, CVTEntry{Valid: true, VB: u, Perm: p})
	return len(s.cvts[c]) - 1, nil
}

// AttachAt places the entry at a specific index, growing the table as
// needed. The OS uses it during fork to give child VBs the same CVT
// indices as the parent (keeping pointers valid, §4.4) and to place shared-
// library static data exactly one index after the library code.
func (s *System) AttachAt(c ClientID, index int, u addr.VBUID, p Perm) error {
	t, ok := s.cvts[c]
	if !ok {
		return ErrUnknownClient
	}
	if !s.MTL.Enabled(u) {
		return fmt.Errorf("vbi: attach of disabled %v", u)
	}
	if index < 0 {
		return ErrBadIndex
	}
	for len(t) <= index {
		t = append(t, CVTEntry{})
	}
	if t[index].Valid {
		return fmt.Errorf("vbi: CVT index %d already in use", index)
	}
	if err := s.MTL.IncRef(u); err != nil {
		return err
	}
	t[index] = CVTEntry{Valid: true, VB: u, Perm: p}
	s.cvts[c] = t
	return nil
}

// Detach executes the detach instruction: it invalidates the client's CVT
// entry for the VB and decrements the VB's reference count, returning the
// new count so the OS can disable the VB at zero (§4.2.4).
func (s *System) Detach(c ClientID, u addr.VBUID) (int, error) {
	t, ok := s.cvts[c]
	if !ok {
		return 0, ErrUnknownClient
	}
	for i := range t {
		if t[i].Valid && t[i].VB == u {
			t[i].Valid = false
			return s.MTL.DecRef(u)
		}
	}
	return 0, fmt.Errorf("vbi: %v not attached to client %d", u, c)
}

// DetachIndex detaches by CVT index.
func (s *System) DetachIndex(c ClientID, index int) (int, error) {
	t, ok := s.cvts[c]
	if !ok {
		return 0, ErrUnknownClient
	}
	if index < 0 || index >= len(t) || !t[index].Valid {
		return 0, ErrInvalidEntry
	}
	u := t[index].VB
	t[index].Valid = false
	return s.MTL.DecRef(u)
}

// ReplaceVB swaps the VB a CVT entry points to, preserving the index.
// promote_vb and VB migration rely on this to keep program pointers valid
// (§4.2.2, §4.4).
func (s *System) ReplaceVB(c ClientID, index int, u addr.VBUID) error {
	t, ok := s.cvts[c]
	if !ok {
		return ErrUnknownClient
	}
	if index < 0 || index >= len(t) || !t[index].Valid {
		return ErrInvalidEntry
	}
	if !s.MTL.Enabled(u) {
		return fmt.Errorf("vbi: replace with disabled %v", u)
	}
	if err := s.MTL.IncRef(u); err != nil {
		return err
	}
	if _, err := s.MTL.DecRef(t[index].VB); err != nil {
		return err
	}
	t[index].VB = u
	return nil
}

// CloneVB executes clone_vb (§4.4).
func (s *System) CloneVB(src, dst addr.VBUID) error {
	return s.MTL.Clone(src, dst)
}

// PromoteVB executes promote_vb (§4.4). The caller must flush the small
// VB's dirty cache lines first (the simulator layer owns the caches).
func (s *System) PromoteVB(small, large addr.VBUID) error {
	return s.MTL.Promote(small, large)
}

// entry fetches a CVT entry for the access path.
func (s *System) entry(c ClientID, index int) (CVTEntry, error) {
	t, ok := s.cvts[c]
	if !ok {
		return CVTEntry{}, ErrUnknownClient
	}
	if index < 0 || index >= len(t) {
		return CVTEntry{}, ErrBadIndex
	}
	if !t[index].Valid {
		return CVTEntry{}, ErrInvalidEntry
	}
	return t[index], nil
}

// VAddr is the two-part virtual address a process generates: the CVT index
// of the VB and the offset within it (§4.2.2). Indirecting through the CVT
// index (instead of using VBI addresses directly) keeps pointers valid when
// a VB is migrated, cloned or promoted: only the CVT entry changes.
type VAddr struct {
	Index  int
	Offset uint64
}

// Rel applies CVT-relative addressing (§4.4): a reference in the VB at
// Index addressing data delta entries later (shared-library static data
// uses +1).
func (v VAddr) Rel(delta int) VAddr {
	return VAddr{Index: v.Index + delta, Offset: v.Offset}
}

// AccessEvent reports the timing-relevant outcome of the CVT check.
type AccessEvent struct {
	// CVTCacheHit is set when the per-core CVT cache held the entry; a
	// near-100% hit rate is expected (§4.3).
	CVTCacheHit bool
	// CVTMemAccess is the physical address of the CVT entry fetched from
	// the memory hierarchy on a cache miss (phys.NoAddr when none).
	CVTMemAccess phys.Addr
	// VBI is the generated VBI address (VBUID concatenated with offset).
	VBI addr.Addr
}

// Core models one hardware context: the client ID of the running process
// (the processor tags each core with it, §4.1.2) and the core's private
// CVT cache — 64-entry direct-mapped, which is faster and more efficient
// than the large set-associative TLBs of conventional processors (§4.3).
type Core struct {
	sys      *System
	client   ClientID
	cvtCache *tlb.TLB
	Stats    CoreStats
}

// CoreStats counts CVT-check events.
type CoreStats struct {
	Accesses       uint64
	CVTCacheHits   uint64
	CVTCacheMisses uint64
	Faults         uint64
}

// NewCore builds a core bound to the system.
func NewCore(s *System) *Core {
	return &Core{sys: s, cvtCache: tlb.New("CVTcache", 64, 1)}
}

// SwitchClient installs the running process's client ID (context switch).
// The CVT cache is flushed: its entries are per-client.
func (c *Core) SwitchClient(id ClientID) {
	if c.client != id {
		c.cvtCache.InvalidateAll()
	}
	c.client = id
}

// Client returns the currently-running client.
func (c *Core) Client() ClientID { return c.client }

// Access performs the CVT permission check of a memory operation (§4.2.3):
// it verifies the index is in range, fetches the CVT entry (through the CVT
// cache), checks the RWX permission and the offset bound, and constructs
// the VBI address used to index the on-chip caches. Failures model CPU
// exceptions.
func (c *Core) Access(v VAddr, want Perm) (AccessEvent, error) {
	c.Stats.Accesses++
	ev := AccessEvent{CVTMemAccess: phys.NoAddr}
	e, err := c.sys.entry(c.client, v.Index)
	if err != nil {
		c.Stats.Faults++
		return ev, err
	}
	// CVT cache: direct-mapped on the index (low 6 bits).
	key := uint64(v.Index)
	if cached, ok := c.cvtCache.Lookup(key); ok && cached == cvtCacheVal(e) {
		ev.CVTCacheHit = true
		c.Stats.CVTCacheHits++
	} else {
		c.Stats.CVTCacheMisses++
		ev.CVTMemAccess = CVTEntryAddr(c.client, v.Index)
		c.cvtCache.Insert(key, cvtCacheVal(e))
	}
	if e.Perm&want != want {
		c.Stats.Faults++
		return ev, fmt.Errorf("%w: have %v, want %v", ErrNoPermission, e.Perm, want)
	}
	if v.Offset >= e.VB.Size() {
		c.Stats.Faults++
		return ev, fmt.Errorf("%w: offset %#x in %v", ErrOutOfBounds, v.Offset, e.VB)
	}
	ev.VBI = addr.Make(e.VB, v.Offset)
	return ev, nil
}

// cvtCacheVal encodes the entry so stale cached entries (after ReplaceVB or
// detach+attach) are detected and refreshed.
func cvtCacheVal(e CVTEntry) uint64 {
	return uint64(e.VB) ^ uint64(e.Perm)<<1
}

// Load performs a functional read through the CVT check and the MTL.
func (c *Core) Load(v VAddr, buf []byte) error {
	ev, err := c.Access(v, PermR)
	if err != nil {
		return err
	}
	return c.sys.MTL.Load(ev.VBI, buf)
}

// Store performs a functional write through the CVT check and the MTL.
func (c *Core) Store(v VAddr, data []byte) error {
	ev, err := c.Access(v, PermW)
	if err != nil {
		return err
	}
	return c.sys.MTL.Store(ev.VBI, data)
}

// Fetch performs a functional instruction fetch (execute permission).
func (c *Core) Fetch(v VAddr, buf []byte) error {
	ev, err := c.Access(v, PermX)
	if err != nil {
		return err
	}
	return c.sys.MTL.Load(ev.VBI, buf)
}
