package core

import (
	"testing"

	"vbi/internal/addr"
	"vbi/internal/mtl"
)

func TestVMClientPartitionDisjoint(t *testing.T) {
	var p VMClientPartition
	var prevHi ClientID
	for vm := uint32(0); vm < 32; vm++ {
		lo, hi, err := p.Range(vm)
		if err != nil {
			t.Fatal(err)
		}
		if vm == 0 && lo != 0 {
			t.Errorf("host range starts at %d", lo)
		}
		if vm > 0 && lo != prevHi+1 {
			t.Errorf("VM %d range [%d,%d] not contiguous after %d", vm, lo, hi, prevHi)
		}
		if hi-lo+1 != MaxVMClients {
			t.Errorf("VM %d span = %d", vm, hi-lo+1)
		}
		prevHi = hi
	}
	if prevHi != MaxClients-1 {
		t.Errorf("partition ends at %d, want %d", prevHi, MaxClients-1)
	}
	if _, _, err := p.Range(32); err == nil {
		t.Error("VM 32 accepted")
	}
}

func TestVMClientOwnership(t *testing.T) {
	var p VMClientPartition
	c, err := p.ClientFor(7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.VMOf(c) != 7 {
		t.Errorf("VMOf = %d, want 7", p.VMOf(c))
	}
	if _, err := p.ClientFor(7, MaxVMClients); err == nil {
		t.Error("overflow index accepted")
	}
}

// TestGuestIsolationEndToEnd composes §6.1: two guests each get a client
// from their VM's client slice and a VB from their VM's VBID slice; the
// CVT check isolates them without any hypervisor involvement on the
// access path.
func TestGuestIsolationEndToEnd(t *testing.T) {
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true}, 64<<20)
	s := NewSystem(m)
	var cp VMClientPartition
	var vp addr.VMPartition

	type guest struct {
		client ClientID
		vb     addr.VBUID
		cpu    *Core
		idx    int
	}
	mkGuest := func(vm uint32) guest {
		client, err := cp.ClientFor(vm, 0)
		if err != nil {
			t.Fatal(err)
		}
		s.RegisterClient(client)
		vb := vp.MakeVMVBUID(addr.Size128KB, vm, 3)
		if err := s.EnableVB(vb, 0); err != nil {
			t.Fatal(err)
		}
		idx, err := s.Attach(client, vb, PermRW)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCore(s)
		c.SwitchClient(client)
		return guest{client: client, vb: vb, cpu: c, idx: idx}
	}

	g1 := mkGuest(1)
	g2 := mkGuest(2)
	if vp.VMOf(g1.vb) != 1 || vp.VMOf(g2.vb) != 2 {
		t.Fatal("VB ownership wrong")
	}
	if err := g1.cpu.Store(VAddr{Index: g1.idx, Offset: 0}, []byte("guest1")); err != nil {
		t.Fatal(err)
	}
	if err := g2.cpu.Store(VAddr{Index: g2.idx, Offset: 0}, []byte("guest2")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	g1.cpu.Load(VAddr{Index: g1.idx, Offset: 0}, buf)
	if string(buf) != "guest1" {
		t.Fatalf("guest 1 reads %q", buf)
	}
	g2.cpu.Load(VAddr{Index: g2.idx, Offset: 0}, buf)
	if string(buf) != "guest2" {
		t.Fatalf("guest 2 reads %q", buf)
	}
	// Guest 2's client has no CVT entry for guest 1's VB: denied.
	g2cpuOnG1 := NewCore(s)
	g2cpuOnG1.SwitchClient(g2.client)
	if err := g2cpuOnG1.Load(VAddr{Index: g1.idx + 1, Offset: 0}, buf); err == nil {
		t.Fatal("cross-guest access allowed")
	}
}
