package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vbi/internal/phys"
	"vbi/internal/tlb"
)

func newTable(t *testing.T, geo Geometry) (*Table, *phys.FrameAllocator) {
	t.Helper()
	alloc := phys.NewFrameAllocator(64 << 20)
	tbl, err := New(geo, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, alloc
}

func TestMapLookup4K(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	frame, _ := alloc.Alloc()
	if err := tbl.Map(0x7f00_0000_1000, frame); err != nil {
		t.Fatal(err)
	}
	pa, ok := tbl.Lookup(0x7f00_0000_1abc)
	if !ok || pa != frame+0xabc {
		t.Fatalf("Lookup = %v,%v want %v", pa, ok, frame+0xabc)
	}
	if _, ok := tbl.Lookup(0x7f00_0000_2000); ok {
		t.Fatal("lookup of unmapped page succeeded")
	}
}

func TestMapLookup2M(t *testing.T) {
	tbl, alloc := newTable(t, Page2M)
	frame, _ := alloc.Alloc()
	frame = frame.Frame() // 2M mapping demands 2M alignment in value space
	frame = 0             // use 0 which is 2M-aligned
	_ = alloc
	if err := tbl.Map(0x4000_0000, phys.Addr(frame)); err != nil {
		t.Fatal(err)
	}
	pa, ok := tbl.Lookup(0x4000_0000 + 0x12345)
	if !ok || pa != phys.Addr(frame)+0x12345 {
		t.Fatalf("Lookup = %v,%v", pa, ok)
	}
}

func TestMapUnaligned(t *testing.T) {
	tbl, _ := newTable(t, Page4K)
	if err := tbl.Map(0x1001, 0); err == nil {
		t.Fatal("unaligned va accepted")
	}
	if err := tbl.Map(0x1000, 0x10); err == nil {
		t.Fatal("unaligned frame accepted")
	}
}

func TestWalkAccessCount4K(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	frame, _ := alloc.Alloc()
	va := uint64(0x5555_5555_5000)
	if err := tbl.Map(va, frame); err != nil {
		t.Fatal(err)
	}
	res := tbl.Walk(va, nil)
	if !res.OK {
		t.Fatal("walk faulted")
	}
	if len(res.Accesses) != 4 {
		t.Fatalf("4 KB walk touched %d PTEs, want 4", len(res.Accesses))
	}
	if res.Phys != frame {
		t.Fatalf("walk phys = %v, want %v", res.Phys, frame)
	}
}

func TestWalkAccessCount2M(t *testing.T) {
	tbl, _ := newTable(t, Page2M)
	va := uint64(0x4000_0000)
	if err := tbl.Map(va, 0); err != nil {
		t.Fatal(err)
	}
	res := tbl.Walk(va, nil)
	if !res.OK || len(res.Accesses) != 3 {
		t.Fatalf("2 MB walk = ok=%v accesses=%d, want ok,3", res.OK, len(res.Accesses))
	}
}

func TestWalkWithPWCSkipsLevels(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	pwc := tlb.NewPWC("PWC", 32)
	frame, _ := alloc.Alloc()
	va := uint64(0x5555_5555_5000)
	if err := tbl.Map(va, frame); err != nil {
		t.Fatal(err)
	}
	r1 := tbl.Walk(va, pwc)
	if len(r1.Accesses) != 4 {
		t.Fatalf("cold walk = %d accesses", len(r1.Accesses))
	}
	// Second walk of the same page: PWC holds the leaf-level node, so only
	// the leaf PTE is read.
	r2 := tbl.Walk(va, pwc)
	if len(r2.Accesses) != 1 {
		t.Fatalf("warm walk = %d accesses, want 1", len(r2.Accesses))
	}
	if r2.Phys != r1.Phys {
		t.Fatal("warm walk disagrees with cold walk")
	}
	// A neighbouring page under the same leaf node also walks in 1 access.
	frame2, _ := alloc.Alloc()
	if err := tbl.Map(va+4096, frame2); err != nil {
		t.Fatal(err)
	}
	r3 := tbl.Walk(va+4096, pwc)
	if len(r3.Accesses) != 1 || !r3.OK {
		t.Fatalf("sibling walk = %d accesses ok=%v", len(r3.Accesses), r3.OK)
	}
}

func TestWalkFault(t *testing.T) {
	tbl, _ := newTable(t, Page4K)
	res := tbl.Walk(0xdead_0000, nil)
	if res.OK {
		t.Fatal("walk of empty table succeeded")
	}
	if len(res.Accesses) != 1 {
		t.Fatalf("faulting walk touched %d PTEs, want 1 (root entry empty)", len(res.Accesses))
	}
}

func TestUnmap(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	frame, _ := alloc.Alloc()
	va := uint64(0x1000)
	tbl.Map(va, frame)
	if !tbl.Unmap(va) {
		t.Fatal("unmap failed")
	}
	if tbl.Unmap(va) {
		t.Fatal("double unmap succeeded")
	}
	if _, ok := tbl.Lookup(va); ok {
		t.Fatal("lookup after unmap succeeded")
	}
}

func TestMapLookupProperty(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	mapped := map[uint64]phys.Addr{}
	f := func(vaRaw uint64) bool {
		va := (vaRaw % (1 << 47)) &^ 4095
		frame, ok := alloc.Alloc()
		if !ok {
			return true // allocator exhausted; vacuous
		}
		if err := tbl.Map(va, frame); err != nil {
			return false
		}
		mapped[va] = frame
		// All previously-mapped pages must still translate correctly.
		for v, f := range mapped {
			pa, ok := tbl.Lookup(v)
			if !ok || pa != f {
				return false
			}
			w := tbl.Walk(v, nil)
			if !w.OK || w.Phys != f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRemapOverwrites(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	f1, _ := alloc.Alloc()
	f2, _ := alloc.Alloc()
	tbl.Map(0x1000, f1)
	tbl.Map(0x1000, f2)
	pa, ok := tbl.Lookup(0x1000)
	if !ok || pa != f2 {
		t.Fatalf("Lookup after remap = %v, want %v", pa, f2)
	}
}

func TestMappedPagesAndNodeBytes(t *testing.T) {
	tbl, alloc := newTable(t, Page4K)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		frame, _ := alloc.Alloc()
		tbl.Map(uint64(rng.Intn(1<<20))<<12, frame)
	}
	if got := tbl.MappedPages(); got == 0 || got > 100 {
		t.Fatalf("MappedPages = %d", got)
	}
	if tbl.NodeBytes() < 4*phys.FrameSize {
		t.Fatalf("NodeBytes = %d, want at least 4 frames", tbl.NodeBytes())
	}
}
