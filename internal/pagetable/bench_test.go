package pagetable

import (
	"testing"

	"vbi/internal/phys"
	"vbi/internal/tlb"
)

func BenchmarkWalk4K(b *testing.B) {
	alloc := phys.NewFrameAllocator(64 << 20)
	t, _ := New(Page4K, alloc)
	frame, _ := alloc.Alloc()
	t.Map(0x7f00_0000_0000, frame)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Walk(0x7f00_0000_0000, nil)
	}
}

func BenchmarkWalk4KWithPWC(b *testing.B) {
	alloc := phys.NewFrameAllocator(64 << 20)
	t, _ := New(Page4K, alloc)
	pwc := tlb.NewPWC("PWC", 32)
	frame, _ := alloc.Alloc()
	t.Map(0x7f00_0000_0000, frame)
	t.Walk(0x7f00_0000_0000, pwc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Walk(0x7f00_0000_0000, pwc)
	}
}

func BenchmarkNestedWalk24(b *testing.B) {
	guestPhys := phys.NewFrameAllocator(64 << 20)
	hostPhys := phys.NewFrameAllocator(256 << 20)
	guest, _ := New(Page4K, guestPhys)
	host, _ := New(Page4K, hostPhys)
	n := &NestedTable{Guest: guest, Host: host}
	gva := uint64(0x7f00_0000_0000)
	guest.Map(gva, 0x80_0000)
	for _, node := range guest.nodes {
		host.Map(uint64(node), phys.Addr(node)+1<<30)
	}
	host.Map(0x80_0000, 0x4080_0000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Walk(gva, nil, nil)
	}
}
