package pagetable

import (
	"testing"

	"vbi/internal/phys"
	"vbi/internal/tlb"
)

// buildNested constructs a guest table (in a guest-physical space) fully
// backed by a host table, and maps gva -> gpa -> hpa.
func buildNested(t *testing.T, geoG, geoH Geometry) (*NestedTable, uint64, phys.Addr) {
	t.Helper()
	guestPhys := phys.NewFrameAllocator(64 << 20)
	hostPhys := phys.NewFrameAllocator(256 << 20)
	guest, err := New(geoG, guestPhys)
	if err != nil {
		t.Fatal(err)
	}
	host, err := New(geoH, hostPhys)
	if err != nil {
		t.Fatal(err)
	}
	n := &NestedTable{Guest: guest, Host: host}

	gva := uint64(0x7f12_3456_7000) &^ (geoG.PageSize() - 1)
	gpaData := phys.Addr(0x80_0000) &^ phys.Addr(geoG.PageSize()-1)
	if err := guest.Map(gva, gpaData); err != nil {
		t.Fatal(err)
	}

	// Back every guest-physical page we use (guest PT nodes + data) with
	// host mappings at identity+1GB for recognisability.
	backing := func(gpa phys.Addr) phys.Addr { return gpa + 1<<30 }
	hostPage := phys.Addr(geoH.PageSize())
	seen := map[phys.Addr]bool{}
	mapHost := func(gpa phys.Addr) {
		base := gpa &^ (hostPage - 1)
		if seen[base] {
			return
		}
		seen[base] = true
		if err := host.Map(uint64(base), backing(base)); err != nil {
			t.Fatal(err)
		}
	}
	for _, node := range guest.nodes {
		mapHost(node)
	}
	mapHost(gpaData)
	wantHPA := backing(gpaData&^(hostPage-1)) + (gpaData & (hostPage - 1))
	return n, gva, wantHPA
}

func TestNestedWalk24Accesses(t *testing.T) {
	n, gva, wantHPA := buildNested(t, Page4K, Page4K)
	if n.MaxAccesses() != 24 {
		t.Fatalf("MaxAccesses = %d, want 24", n.MaxAccesses())
	}
	res := n.Walk(gva, nil, nil)
	if !res.OK {
		t.Fatal("nested walk faulted")
	}
	// The paper's headline number: up to 24 accesses for x86-64 4-level
	// tables (§1). Exactly 24 when nothing is cached.
	if len(res.Accesses) != 24 {
		t.Fatalf("cold 2D walk = %d accesses, want 24", len(res.Accesses))
	}
	if res.GuestAccesses != 4 || res.HostAccesses != 20 {
		t.Fatalf("breakdown = %d guest + %d host", res.GuestAccesses, res.HostAccesses)
	}
	if res.Phys != wantHPA {
		t.Fatalf("phys = %v, want %v", res.Phys, wantHPA)
	}
}

func TestNestedWalk2M15Accesses(t *testing.T) {
	n, gva, _ := buildNested(t, Page2M, Page2M)
	if n.MaxAccesses() != 15 {
		t.Fatalf("MaxAccesses = %d, want 15", n.MaxAccesses())
	}
	res := n.Walk(gva, nil, nil)
	if !res.OK || len(res.Accesses) != 15 {
		t.Fatalf("cold 2M 2D walk = ok=%v accesses=%d, want 15", res.OK, len(res.Accesses))
	}
}

func TestNestedWalkWithCaches(t *testing.T) {
	n, gva, wantHPA := buildNested(t, Page4K, Page4K)
	hostPWC := tlb.NewPWC("hPWC", 32)
	guestPWC := tlb.NewPWC("gPWC", 32)
	// Even the first walk benefits from the PWCs: the five host walks share
	// upper-level nodes, so the host PWC warms up intra-walk.
	cold := n.Walk(gva, hostPWC, guestPWC)
	if !cold.OK || len(cold.Accesses) >= 24 || len(cold.Accesses) <= 3 {
		t.Fatalf("cold walk with PWCs = %d accesses, want between 4 and 23", len(cold.Accesses))
	}
	warm := n.Walk(gva, hostPWC, guestPWC)
	if !warm.OK {
		t.Fatal("warm walk faulted")
	}
	if len(warm.Accesses) >= len(cold.Accesses) {
		t.Fatalf("warm walk (%d accesses) not faster than cold (%d)",
			len(warm.Accesses), len(cold.Accesses))
	}
	// Fully warm caches: guest PWC skips to the guest leaf (1 guest PTE
	// read needing 1 host walk of 1 access thanks to host PWC) + final host
	// walk of 1 access = 3.
	if len(warm.Accesses) != 3 {
		t.Fatalf("warm walk = %d accesses, want 3", len(warm.Accesses))
	}
	if warm.Phys != wantHPA {
		t.Fatal("warm walk produced wrong translation")
	}
}

func TestNestedWalkGuestFault(t *testing.T) {
	n, gva, _ := buildNested(t, Page4K, Page4K)
	res := n.Walk(gva+1<<30, nil, nil) // far away: guest hole
	if res.OK {
		t.Fatal("walk of unmapped gva succeeded")
	}
}
