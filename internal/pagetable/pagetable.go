// Package pagetable implements the conventional-baseline translation
// machinery: x86-64-style radix page tables built in simulated physical
// memory, hardware walks accelerated by page-walk caches, and the
// two-dimensional (nested) walks of virtualized systems, which require up
// to 24 memory accesses for 4-level tables — the overhead VBI eliminates
// (§1, §3.5).
package pagetable

import (
	"fmt"

	"vbi/internal/phys"
	"vbi/internal/tlb"
)

// indexBits is the radix width per level (512 entries of 8 bytes = 4 KB
// nodes, as in x86-64).
const indexBits = 9

// entrySize is the size of one PTE in bytes.
const entrySize = 8

// Geometry describes a page-table shape.
type Geometry struct {
	Levels    int  // 4 for 4 KB pages, 3 for 2 MB pages
	PageShift uint // 12 or 21
}

// Page4K is the 4-level, 4 KB-page geometry of x86-64.
var Page4K = Geometry{Levels: 4, PageShift: 12}

// Page2M is the 3-level, 2 MB-page geometry (leaf at the PD level).
var Page2M = Geometry{Levels: 3, PageShift: 21}

// PageSize returns the mapped page size in bytes.
func (g Geometry) PageSize() uint64 { return 1 << g.PageShift }

// FrameSource supplies 4 KB frames for table nodes.
type FrameSource interface {
	Alloc() (phys.Addr, bool)
}

// Table is one radix page table instance living in a simulated physical
// address space. The table is functional: Map establishes real mappings and
// Walk retraces the exact PTE addresses hardware would touch, so the timing
// model can charge each access through the cache hierarchy.
type Table struct {
	Geo   Geometry
	root  phys.Addr
	alloc FrameSource
	// pte maps a PTE's physical address to its stored value (the physical
	// base of the next-level node, or the leaf frame).
	pte map[phys.Addr]phys.Addr
	// nodes tracks allocated table nodes for accounting/teardown.
	nodes []phys.Addr
}

// New allocates an empty table (and its root node) from alloc.
func New(geo Geometry, alloc FrameSource) (*Table, error) {
	t := &Table{Geo: geo, alloc: alloc, pte: make(map[phys.Addr]phys.Addr)}
	root, ok := alloc.Alloc()
	if !ok {
		return nil, fmt.Errorf("pagetable: out of memory allocating root")
	}
	t.root = root
	t.nodes = append(t.nodes, root)
	return t, nil
}

// Root returns the physical address of the root node (CR3 analogue).
func (t *Table) Root() phys.Addr { return t.root }

// NodeBytes returns the memory consumed by table nodes.
func (t *Table) NodeBytes() uint64 { return uint64(len(t.nodes)) * phys.FrameSize }

// indexAt returns the radix index consumed at walk level k (0 = root).
func (t *Table) indexAt(va uint64, k int) uint64 {
	shift := t.Geo.PageShift + uint(indexBits*(t.Geo.Levels-1-k))
	return (va >> shift) & (1<<indexBits - 1)
}

// prefixAt returns the address prefix that identifies the node entered
// after consuming k levels (used as the PWC key for that node).
func (t *Table) prefixAt(va uint64, k int) uint64 {
	shift := t.Geo.PageShift + uint(indexBits*(t.Geo.Levels-k))
	return va >> shift
}

// pteAddr returns the physical address of the PTE at (node, index).
func pteAddr(node phys.Addr, index uint64) phys.Addr {
	return node + phys.Addr(index*entrySize)
}

// Map installs va -> frame. The va and frame must be page-aligned for the
// geometry. Intermediate nodes are allocated on demand.
func (t *Table) Map(va uint64, frame phys.Addr) error {
	mask := t.Geo.PageSize() - 1
	if va&mask != 0 || uint64(frame)&mask != 0 {
		return fmt.Errorf("pagetable: unaligned mapping %#x -> %v", va, frame)
	}
	node := t.root
	for k := 0; k < t.Geo.Levels-1; k++ {
		e := pteAddr(node, t.indexAt(va, k))
		next, ok := t.pte[e]
		if !ok {
			n, okAlloc := t.alloc.Alloc()
			if !okAlloc {
				return fmt.Errorf("pagetable: out of memory allocating node")
			}
			t.nodes = append(t.nodes, n)
			t.pte[e] = n
			next = n
		}
		node = next
	}
	t.pte[pteAddr(node, t.indexAt(va, t.Geo.Levels-1))] = frame
	return nil
}

// Unmap removes the leaf mapping for va (intermediate nodes are retained).
// It reports whether a mapping existed.
func (t *Table) Unmap(va uint64) bool {
	node, ok := t.nodeFor(va)
	if !ok {
		return false
	}
	e := pteAddr(node, t.indexAt(va, t.Geo.Levels-1))
	if _, ok := t.pte[e]; !ok {
		return false
	}
	delete(t.pte, e)
	return true
}

func (t *Table) nodeFor(va uint64) (phys.Addr, bool) {
	node := t.root
	for k := 0; k < t.Geo.Levels-1; k++ {
		next, ok := t.pte[pteAddr(node, t.indexAt(va, k))]
		if !ok {
			return 0, false
		}
		node = next
	}
	return node, true
}

// Lookup functionally translates va without modelling any hardware state.
func (t *Table) Lookup(va uint64) (phys.Addr, bool) {
	node, ok := t.nodeFor(va)
	if !ok {
		return phys.NoAddr, false
	}
	frame, ok := t.pte[pteAddr(node, t.indexAt(va, t.Geo.Levels-1))]
	if !ok {
		return phys.NoAddr, false
	}
	return frame + phys.Addr(va&(t.Geo.PageSize()-1)), true
}

// WalkResult reports the outcome of a hardware walk.
type WalkResult struct {
	// Accesses lists, in order, the physical addresses of every PTE the
	// walker read. The timing model charges each through the hierarchy.
	Accesses []phys.Addr
	// Phys is the translated physical address (page base + offset).
	Phys phys.Addr
	// OK is false when the walk hit a hole (page fault).
	OK bool
}

// Walk performs a hardware page walk for va, consulting (and filling) the
// page-walk cache if one is supplied. The PWC caches node bases for the
// levels below the root, letting the walker skip upper-level accesses
// (Barr et al. style "skip, don't walk").
func (t *Table) Walk(va uint64, pwc *tlb.PWC) WalkResult {
	node := t.root
	start := 0
	if pwc != nil {
		// Deepest cached node first.
		for k := t.Geo.Levels - 1; k >= 1; k-- {
			if base, ok := pwc.Lookup(k, t.prefixAt(va, k)); ok {
				node = phys.Addr(base)
				start = k
				break
			}
		}
	}
	var res WalkResult
	for k := start; k < t.Geo.Levels; k++ {
		e := pteAddr(node, t.indexAt(va, k))
		res.Accesses = append(res.Accesses, e)
		val, ok := t.pte[e]
		if !ok {
			return res // fault: OK stays false
		}
		if k < t.Geo.Levels-1 {
			node = val
			if pwc != nil {
				pwc.Insert(k+1, t.prefixAt(va, k+1), uint64(val))
			}
		} else {
			res.Phys = val + phys.Addr(va&(t.Geo.PageSize()-1))
			res.OK = true
		}
	}
	return res
}

// MappedPages returns the number of leaf mappings (for tests/teardown).
// Leaf PTEs are those whose value is not one of the table's own nodes.
func (t *Table) MappedPages() int {
	nodeSet := make(map[phys.Addr]bool, len(t.nodes))
	for _, n := range t.nodes {
		nodeSet[n] = true
	}
	n := 0
	for _, v := range t.pte {
		if !nodeSet[v] {
			n++
		}
	}
	return n
}
