package pagetable

import (
	"vbi/internal/phys"
	"vbi/internal/tlb"
)

// NestedTable models hardware nested paging (two-dimensional walks): a
// guest table translating guest-virtual to guest-physical addresses, whose
// own nodes live in guest-physical memory, composed with a host table
// translating guest-physical to host-physical addresses.
//
// A TLB miss therefore triggers the 2D walk of §1: every guest PTE access
// is a guest-physical address that must first be translated through the
// host table, and the final guest-physical data address needs one more host
// walk. With 4-level tables on both dimensions this costs up to
// (4+1)×(4+1)−1 = 24 memory accesses.
type NestedTable struct {
	// Guest translates gVA -> gPA; its "physical" addresses are gPAs.
	Guest *Table
	// Host translates gPA -> hPA.
	Host *Table
}

// NestedWalkResult extends WalkResult with a breakdown of where the
// accesses came from.
type NestedWalkResult struct {
	WalkResult
	GuestAccesses int // guest-dimension PTE reads
	HostAccesses  int // host-dimension PTE reads
}

// Walk performs the full 2D walk of gva. hostPWC accelerates the host
// dimension; guestPWC (the "2D page-walk cache" Virtual-2M is augmented
// with, §7.2 footnote 4) caches guest-dimension nodes and may be nil.
// All returned accesses are host-physical addresses, charged by the caller
// through the cache hierarchy.
func (n *NestedTable) Walk(gva uint64, hostPWC, guestPWC *tlb.PWC) NestedWalkResult {
	var res NestedWalkResult
	g := n.Guest
	node := g.root // a gPA
	start := 0
	if guestPWC != nil {
		for k := g.Geo.Levels - 1; k >= 1; k-- {
			if base, ok := guestPWC.Lookup(k, g.prefixAt(gva, k)); ok {
				node = phys.Addr(base)
				start = k
				break
			}
		}
	}
	for k := start; k < g.Geo.Levels; k++ {
		gpaOfPTE := pteAddr(node, g.indexAt(gva, k))
		// Host walk to translate the guest PTE's gPA.
		hw := n.Host.Walk(uint64(gpaOfPTE), hostPWC)
		res.Accesses = append(res.Accesses, hw.Accesses...)
		res.HostAccesses += len(hw.Accesses)
		if !hw.OK {
			return res // host fault on guest PT node
		}
		// The guest PTE read itself, at its host-physical location.
		res.Accesses = append(res.Accesses, hw.Phys)
		res.GuestAccesses++
		val, ok := g.pte[gpaOfPTE]
		if !ok {
			return res // guest fault
		}
		if k < g.Geo.Levels-1 {
			node = val
			if guestPWC != nil {
				guestPWC.Insert(k+1, g.prefixAt(gva, k+1), uint64(val))
			}
		} else {
			// Final host walk for the data gPA.
			gpa := val + phys.Addr(gva&(g.Geo.PageSize()-1))
			hw := n.Host.Walk(uint64(gpa), hostPWC)
			res.Accesses = append(res.Accesses, hw.Accesses...)
			res.HostAccesses += len(hw.Accesses)
			if !hw.OK {
				return res
			}
			res.Phys = hw.Phys
			res.OK = true
		}
	}
	return res
}

// MaxAccesses returns the worst-case access count of the 2D walk for the
// configured geometries: (gLevels+1)*(hLevels+1) - 1.
func (n *NestedTable) MaxAccesses() int {
	return (n.Guest.Geo.Levels+1)*(n.Host.Geo.Levels+1) - 1
}
