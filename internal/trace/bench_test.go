package trace

import "testing"

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(testProfile(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
