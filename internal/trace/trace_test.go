package trace

import (
	"testing"
)

func testProfile() Profile {
	return Profile{
		Name:           "unit",
		MemRefsPer1000: 250,
		Structs: []Struct{
			{Name: "stream", Size: 1 << 20, Pattern: Seq, Weight: 1, WriteFrac: 0.5},
			{Name: "table", Size: 4 << 20, Pattern: Rand, Weight: 2, WriteFrac: 0.1, ColdFrac: 0.5},
			{Name: "list", Size: 2 << 20, Pattern: Chase, Weight: 1},
		},
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(testProfile(), 42)
	g2 := NewGenerator(testProfile(), 42)
	for i := 0; i < 10000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("ref %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	g1 := NewGenerator(testProfile(), 1)
	g2 := NewGenerator(testProfile(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next() == g2.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical refs", same)
	}
}

func TestWeightsRespected(t *testing.T) {
	g := NewGenerator(testProfile(), 7)
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[g.Next().StructIdx]++
	}
	// Weights 1:2:1 -> shares 0.25, 0.5, 0.25 (±3%).
	for i, want := range []float64{0.25, 0.5, 0.25} {
		got := float64(counts[i]) / n
		if got < want-0.03 || got > want+0.03 {
			t.Fatalf("struct %d share = %.3f, want %.2f", i, got, want)
		}
	}
}

func TestOffsetsInBounds(t *testing.T) {
	p := testProfile()
	g := NewGenerator(p, 3)
	for i := 0; i < 50000; i++ {
		r := g.Next()
		if r.Offset >= p.Structs[r.StructIdx].Size {
			t.Fatalf("offset %#x out of bounds for struct %d", r.Offset, r.StructIdx)
		}
		if r.Offset&63 != 0 {
			t.Fatalf("offset %#x not line-aligned", r.Offset)
		}
	}
}

func TestSequentialPattern(t *testing.T) {
	p := Profile{Name: "seq", Structs: []Struct{{Size: 1 << 20, Pattern: Seq, Weight: 1}}}
	g := NewGenerator(p, 1)
	prev := g.Next().Offset
	for i := 0; i < 100; i++ {
		cur := g.Next().Offset
		want := (prev + 64) % (1 << 20)
		if cur != want {
			t.Fatalf("seq offset = %#x, want %#x", cur, want)
		}
		prev = cur
	}
}

func TestStridedPattern(t *testing.T) {
	p := Profile{Name: "strided", Structs: []Struct{
		{Size: 1 << 20, Pattern: Strided, Stride: 4096, Weight: 1}}}
	g := NewGenerator(p, 1)
	a := g.Next().Offset
	b := g.Next().Offset
	if b != (a+4096)%(1<<20) {
		t.Fatalf("stride: %#x then %#x", a, b)
	}
}

func TestChaseSetsDep(t *testing.T) {
	p := Profile{Name: "chase", Structs: []Struct{{Size: 1 << 20, Pattern: Chase, Weight: 1}}}
	g := NewGenerator(p, 1)
	for i := 0; i < 100; i++ {
		if !g.Next().Op.Dep {
			t.Fatal("chase ref without Dep")
		}
	}
}

func TestColdFracKeepsWritesOut(t *testing.T) {
	p := Profile{Name: "cold", Structs: []Struct{
		{Size: 1 << 20, Pattern: Rand, Weight: 1, WriteFrac: 0.5, ColdFrac: 0.25}}}
	g := NewGenerator(p, 1)
	warmLimit := uint64(float64(1<<20) * 0.75)
	writesSeen := 0
	for i := 0; i < 50000; i++ {
		r := g.Next()
		if r.Op.Write {
			writesSeen++
			if r.Offset >= warmLimit {
				t.Fatalf("write at %#x inside the cold tail (limit %#x)", r.Offset, warmLimit)
			}
		}
	}
	if writesSeen < 20000 {
		t.Fatalf("writes = %d, want ≈ 25000", writesSeen)
	}
}

func TestSparseHotSpreadsPages(t *testing.T) {
	p := Profile{Name: "sparse", Structs: []Struct{{
		Size: 64 << 20, Pattern: Rand, Weight: 1,
		HotFrac: 0.5, HotBias: 1.0, SparseHot: true}}}
	g := NewGenerator(p, 1)
	pages := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		pages[g.Next().Offset>>12] = true
	}
	// One hot line per page over half the struct: thousands of distinct
	// pages even though the cache footprint is one line each.
	if len(pages) < 4000 {
		t.Fatalf("sparse-hot touched only %d pages", len(pages))
	}
}

func TestHotBiasSkews(t *testing.T) {
	p := Profile{Name: "hot", Structs: []Struct{{
		Size: 16 << 20, Pattern: Rand, Weight: 1, HotFrac: 0.01, HotBias: 0.9}}}
	g := NewGenerator(p, 1)
	size := float64(uint64(16 << 20))
	hotLimit := uint64(size * 0.01)
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Offset < hotLimit {
			hot++
		}
	}
	if frac := float64(hot) / n; frac < 0.85 {
		t.Fatalf("hot share = %.2f, want ≈ 0.9", frac)
	}
}

func TestGapRespectsMemIntensity(t *testing.T) {
	p := testProfile() // 250 refs / 1000 instrs -> avg gap ≈ 3
	g := NewGenerator(p, 1)
	var total uint64
	const n = 20000
	for i := 0; i < n; i++ {
		total += uint64(g.Next().Op.Gap)
	}
	avg := float64(total) / n
	if avg < 1.5 || avg > 4.5 {
		t.Fatalf("average gap = %.2f, want ≈ 3", avg)
	}
}

func TestFootprint(t *testing.T) {
	if got := testProfile().Footprint(); got != 7<<20 {
		t.Fatalf("footprint = %d", got)
	}
}
