// Package trace generates the deterministic synthetic memory-reference
// streams that stand in for the paper's Pin traces of SPEC CPU 2006/2017,
// TailBench and Graph 500 (see the substitution table in DESIGN.md).
//
// A workload is a set of data structures, each with a size, an access
// pattern (sequential, strided, random, pointer-chase), an access-share
// weight, a hot-subset skew, a write fraction and a cold fraction (the
// tail of the structure that is read but never written — zero-initialized
// or over-allocated memory, which the delayed-allocation optimization of
// §5.1 turns into zero lines). The generator is seeded per workload, so
// every system simulates the identical reference stream.
package trace

import (
	"vbi/internal/cpu"
)

// Pattern selects how offsets walk a structure.
type Pattern uint8

const (
	// Seq walks lines in address order (streaming).
	Seq Pattern = iota
	// Strided walks with a fixed stride (column sweeps, grids).
	Strided
	// Rand draws uniform offsets (hash tables, graph frontiers).
	Rand
	// Chase draws uniform offsets with load-to-load dependence (linked
	// structures: each access needs the previous one's value).
	Chase
)

// Struct describes one data structure of a workload.
type Struct struct {
	Name string
	// Size in bytes (determines the VB size class under VBI).
	Size uint64
	// Pattern of accesses within the structure.
	Pattern Pattern
	// Stride in bytes for Strided (ignored otherwise).
	Stride uint64
	// Weight is the structure's share of references (relative).
	Weight float64
	// WriteFrac is the store fraction of its references.
	WriteFrac float64
	// HotFrac is the fraction of the structure that is hot; HotBias is the
	// probability a random access lands in the hot subset. Zero values
	// mean uniform.
	HotFrac float64
	HotBias float64
	// SparseHot spreads the hot subset as one line per 4 KB page instead
	// of a dense prefix: the cache footprint stays small while the TLB
	// footprint spans HotFrac of the structure's pages (pointer-chasing
	// workloads like mcf exhibit exactly this cache-friendly,
	// TLB-hostile shape).
	SparseHot bool
	// ColdFrac is the tail fraction of the structure that is never
	// written: reads there return zero/never-initialized data. Writes are
	// confined to the first (1-ColdFrac) of the structure.
	ColdFrac float64
	// Code marks an instruction-like structure (read-only, executable).
	Code bool
}

// Profile describes one benchmark workload.
type Profile struct {
	Name string
	// MemRefsPer1000 is memory references per 1000 instructions; it sets
	// the gap between trace ops.
	MemRefsPer1000 int
	// Structs are the workload's data structures.
	Structs []Struct
}

// Footprint returns the total data size.
func (p Profile) Footprint() uint64 {
	var n uint64
	for _, s := range p.Structs {
		n += s.Size
	}
	return n
}

// WarmBytes returns the initialized prefix of the structure: everything
// except the cold tail. Machines pre-touch/pre-allocate it before the
// simulated region starts, the way real workloads initialize their data
// during startup.
func (s Struct) WarmBytes() uint64 {
	warm := uint64(float64(s.Size) * (1 - s.ColdFrac))
	if warm > s.Size {
		warm = s.Size
	}
	return warm
}

// Ref is one generated reference: the structure it targets plus the op.
type Ref struct {
	StructIdx int
	Offset    uint64
	Op        cpu.Op // Addr is left 0; the system layer resolves it
}

// Generator produces the deterministic reference stream of a profile.
type Generator struct {
	p       Profile
	rng     splitMix
	cum     []float64 // cumulative weights
	cursors []uint64  // per-struct sequential/strided cursors
	gapAvg  uint32
}

// NewGenerator seeds a generator. The same (profile, seed) pair always
// yields the same stream.
func NewGenerator(p Profile, seed uint64) *Generator {
	g := &Generator{
		p:       p,
		rng:     splitMix{state: seed ^ hashName(p.Name)},
		cursors: make([]uint64, len(p.Structs)),
	}
	var total float64
	for _, s := range p.Structs {
		total += s.Weight
	}
	acc := 0.0
	for _, s := range p.Structs {
		acc += s.Weight / total
		g.cum = append(g.cum, acc)
	}
	refsPerK := p.MemRefsPer1000
	if refsPerK <= 0 {
		refsPerK = 250
	}
	g.gapAvg = uint32((1000+refsPerK/2)/refsPerK) - 1
	return g
}

// Next produces the next reference.
func (g *Generator) Next() Ref {
	// Pick the structure by weight.
	x := g.rng.float64()
	idx := len(g.cum) - 1
	for i, c := range g.cum {
		if x < c {
			idx = i
			break
		}
	}
	s := &g.p.Structs[idx]

	lines := s.Size >> 6
	var line uint64
	dep := false
	switch s.Pattern {
	case Seq:
		line = g.cursors[idx] % lines
		g.cursors[idx]++
	case Strided:
		stride := s.Stride >> 6
		if stride == 0 {
			stride = 1
		}
		line = (g.cursors[idx] * stride) % lines
		g.cursors[idx]++
	case Chase:
		dep = true
		fallthrough
	case Rand:
		if s.HotFrac > 0 && g.rng.float64() < s.HotBias {
			if s.SparseHot {
				const linesPerPage = 4096 / 64
				pages := lines / linesPerPage
				hotPages := uint64(float64(pages) * s.HotFrac)
				if hotPages == 0 {
					hotPages = 1
				}
				// Hot pages are sprinkled evenly across the whole
				// structure (linked nodes scattered by the allocator), so
				// they defeat both 4 KB and 2 MB TLB reach.
				stride := pages / hotPages
				if stride == 0 {
					stride = 1
				}
				line = g.rng.uint64n(hotPages) * stride * linesPerPage
			} else {
				hotLines := uint64(float64(lines) * s.HotFrac)
				if hotLines == 0 {
					hotLines = 1
				}
				line = g.rng.uint64n(hotLines)
			}
		} else {
			line = g.rng.uint64n(lines)
		}
	}

	write := g.rng.float64() < s.WriteFrac
	if write && s.ColdFrac > 0 {
		// Writes stay out of the cold tail.
		warmLines := uint64(float64(lines) * (1 - s.ColdFrac))
		if warmLines == 0 {
			warmLines = 1
		}
		if line >= warmLines {
			line %= warmLines
		}
	}

	// Gap jitter: uniform in [gapAvg/2, 3*gapAvg/2].
	gap := g.gapAvg
	if gap > 1 {
		gap = gap/2 + uint32(g.rng.uint64n(uint64(gap)))
	}
	return Ref{
		StructIdx: idx,
		Offset:    line << 6,
		Op:        cpu.Op{Gap: gap, Write: write, Dep: dep},
	}
}

// Skip advances the stream past n references without materializing them.
// Generation is timing-independent — the stream is a pure function of
// (profile, seed) — so skipping is how a time-sliced shard positions its
// generator at the slice's warm-up window: generating a reference costs
// tens of nanoseconds against hundreds for simulating it, which is the
// entire latency win of the approximate sharding mode.
func (g *Generator) Skip(n int) {
	for i := 0; i < n; i++ {
		g.Next()
	}
}

// splitMix is SplitMix64: tiny, fast, deterministic.
type splitMix struct{ state uint64 }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix) uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return s.next() % n
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
