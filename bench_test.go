// Package vbi's top-level benchmarks regenerate the paper's evaluation
// (§7): one benchmark per table and figure, each running a scaled-down
// version of the corresponding experiment and reporting its headline
// numbers as custom metrics. The figure benchmarks execute through the
// internal/harness worker pool (workers = GOMAXPROCS), so they also track
// the orchestrator's scaling. cmd/vbibench runs the same experiments at
// full scale and prints the paper-format tables; EXPERIMENTS.md records
// paper-vs-measured values.
//
// Run with: go test -bench=. -benchmem
package vbi

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"vbi/internal/exp"
	"vbi/internal/harness"
	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

// benchOptions routes a figure through the harness at full parallelism.
func benchOptions(refs int) exp.Options {
	return exp.Options{Refs: refs, Workers: runtime.GOMAXPROCS(0)}
}

// benchRefs keeps each figure regeneration to tens of seconds. The shapes
// are stable from ~50k references; cmd/vbibench defaults to 400k.
const benchRefs = 40_000

// reportAverages attaches each series' AVG row value as a metric.
func reportAverages(b *testing.B, t *stats.Table) {
	avgRow := -1
	for i, r := range t.Rows {
		if r == "AVG" {
			avgRow = i
		}
	}
	if avgRow < 0 {
		return
	}
	for _, s := range t.Series {
		if avgRow < len(s.Values) {
			name := strings.ReplaceAll(strings.ToLower(s.Label), " ", "-")
			b.ReportMetric(s.Values[avgRow], name+"-avg-speedup")
		}
	}
}

// BenchmarkTable1Config regenerates Table 1 (simulation configuration).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(exp.Table1(), "DDR3-1600") {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2Bundles regenerates Table 2 (workload bundles).
func BenchmarkTable2Bundles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(exp.Table2(), "wl6") {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: single-core 4 KB-page systems over
// all fourteen applications, normalized to Native.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig6(benchOptions(benchRefs))
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, t)
	}
}

// BenchmarkFig7 regenerates Figure 7: large-page systems (including
// Enigma-HW-2M) normalized to Native-2M.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig7(benchOptions(benchRefs))
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, t)
	}
}

// BenchmarkFig8 regenerates Figure 8: quad-core weighted speedup over the
// Table 2 bundles, normalized to Native.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig8(benchOptions(benchRefs / 2))
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, t)
	}
}

// BenchmarkFig9 regenerates Figure 9: the PCM–DRAM hybrid memory under
// VBI vs hotness-unaware mapping (plus the IDEAL oracle).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig9(benchOptions(benchRefs))
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, t)
	}
}

// BenchmarkFig10 regenerates Figure 10: TL-DRAM under the same policies.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig10(benchOptions(benchRefs))
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, t)
	}
}

// BenchmarkAblationVBIVariants isolates each VBI mechanism on one
// translation-bound application: VBI-1 (virtual caches + flexible
// translation), VBI-2 (+ delayed allocation), VBI-Full (+ early
// reservation) — the design-choice ablation DESIGN.md calls out.
func BenchmarkAblationVBIVariants(b *testing.B) {
	prof := workloads.MustGet("graph500")
	for _, kind := range []system.Kind{system.Native, system.VBI1, system.VBI2, system.VBIFull} {
		b.Run(strings.ReplaceAll(kind.String(), " ", "-"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := system.New(system.Config{Kind: kind, Refs: benchRefs}, prof)
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "ipc")
				b.ReportMetric(float64(res.DRAMAccesses), "dram-accesses")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// references per second for the heaviest system.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof := workloads.MustGet("mcf")
	m, err := system.New(system.Config{Kind: VBIFullKind, Refs: 1, Warmup: 1}, prof)
	if err != nil {
		b.Fatal(err)
	}
	_ = m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := system.New(system.Config{Kind: VBIFullKind, Refs: benchRefs}, prof)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchRefs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// VBIFullKind re-exports the flagship configuration for the throughput
// benchmark.
const VBIFullKind = system.VBIFull

// TestBenchBaseline is the perf-trajectory guard over the Figure 6
// matrix. Env-gated because it always simulates — no cache — and so
// costs real time. Two modes:
//
//	VBI_BENCH_BASELINE=BENCH_fig6.json go test -run TestBenchBaseline
//
// regenerates the tracked baseline document (cmd/vbibench
// -bench-baseline writes the same document at full scale), and
//
//	VBI_BENCH_GUARD=1 go test -run TestBenchBaseline
//
// re-measures and fails if aggregate simulator throughput (refs/sec
// summed over the matrix) regressed more than 25% against the committed
// BENCH_fig6.json. Throughput, not wall-clock, so the guard is
// comparable across pool widths and refs scales. With neither variable
// set the test skips with a pointer to both modes.
func TestBenchBaseline(t *testing.T) {
	if path := os.Getenv("VBI_BENCH_BASELINE"); path != "" {
		b, err := exp.BenchBaseline(exp.Options{Refs: benchRefs})
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Systems) == 0 || b.Systems[0].RefsPerSecond <= 0 {
			t.Fatalf("degenerate baseline: %+v", b)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline written to %s (%d systems)", path, len(b.Systems))
		return
	}
	if os.Getenv("VBI_BENCH_GUARD") == "" {
		t.Skip("set VBI_BENCH_BASELINE=<path> to regenerate the perf baseline, or VBI_BENCH_GUARD=1 to guard against BENCH_fig6.json")
	}
	raw, err := os.ReadFile("BENCH_fig6.json")
	if err != nil {
		t.Skipf("no committed baseline to guard against: %v", err)
	}
	var committed exp.Baseline
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("decode committed baseline: %v", err)
	}
	if committed.Harness != harness.Version {
		t.Skipf("committed baseline measured under %s, this binary is %s; regenerate with VBI_BENCH_BASELINE before guarding",
			committed.Harness, harness.Version)
	}
	// Aggregate throughput: total simulated references over total
	// simulation seconds. Measured under the committed baseline's own
	// conditions — same refs scale (per-run fixed costs amortize
	// differently at different refs) and same pool width (SimSeconds
	// sums per-run wall clock, which inflates under pool contention) —
	// so the ratio isolates the simulator, not the harness setup.
	aggregate := func(b *exp.Baseline) float64 {
		var secs float64
		for _, s := range b.Systems {
			secs += s.SimSeconds
		}
		if secs <= 0 {
			return 0
		}
		return float64(b.Refs) * float64(b.Workloads) * float64(len(b.Systems)) / secs
	}
	want := aggregate(&committed)
	if want <= 0 {
		t.Fatalf("degenerate committed baseline: %+v", committed)
	}
	b, err := exp.BenchBaseline(exp.Options{Refs: committed.Refs, Workers: committed.Workers})
	if err != nil {
		t.Fatal(err)
	}
	got := aggregate(b)
	t.Logf("aggregate throughput: committed %.0f refs/s, measured %.0f refs/s (%.2fx)", want, got, got/want)
	if got < want/1.25 {
		t.Errorf("simulator throughput regressed more than 25%%: committed %.0f refs/s, measured %.0f refs/s", want, got)
	}
}

// BenchmarkHarnessWorkers measures the experiment orchestrator itself: the
// same job batch at one worker vs full parallelism. On a multi-core
// machine the ratio of the two is the harness's wall-clock win.
func BenchmarkHarnessWorkers(b *testing.B) {
	grid := harness.Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd", "sjeng", "bzip2", "hmmer"},
		Refs:      benchRefs / 2,
	}
	jobs, err := grid.Jobs()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&harness.Runner{Workers: workers}).Run(context.Background(), jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
