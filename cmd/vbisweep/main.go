// Command vbisweep runs a (systems × workloads × seeds) grid through the
// experiment harness and emits the result matrix. Grids come from flags or
// a small JSON config; runs execute across a bounded worker pool, and an
// optional on-disk cache makes re-runs incremental (only changed cells
// simulate).
//
// Usage:
//
//	vbisweep -systems Native,VBI-Full -workloads mcf,graph500 -refs 100000
//	vbisweep -config grid.json -workers 8 -cache .vbicache -csv out.csv -json out.json
//	vbisweep -list
//
// A config file holds the same axes as the flags:
//
//	{"systems": ["Native", "VBI-Full"], "workloads": ["mcf"], "seeds": [1, 2], "refs": 100000}
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vbi/internal/harness"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

func main() {
	var (
		systemsF   = flag.String("systems", "Native,VBI-Full", "comma-separated system names (see -list)")
		workloadsF = flag.String("workloads", "mcf,graph500", "comma-separated workload names (see -list)")
		seedsF     = flag.String("seeds", "1", "comma-separated trace seeds")
		refs       = flag.Int("refs", 100_000, "measured references per run")
		config     = flag.String("config", "", "JSON grid config (overrides the axis flags)")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache", "", "result-cache directory (empty = no cache)")
		metric     = flag.String("metric", harness.MetricIPC, "matrix metric: ipc or dram")
		jsonOut    = flag.String("json", "", "write the matrix as JSON to this file")
		csvOut     = flag.String("csv", "", "write the matrix as CSV to this file")
		list       = flag.Bool("list", false, "list systems and workloads")
		verbose    = flag.Bool("v", false, "log every run")
	)
	flag.Parse()

	if *list {
		fmt.Println("systems:")
		for _, k := range system.Kinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("workloads:")
		for _, n := range workloads.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if *metric != harness.MetricIPC && *metric != harness.MetricDRAM {
		fatal(fmt.Errorf("unknown metric %q (want %s or %s)",
			*metric, harness.MetricIPC, harness.MetricDRAM))
	}

	var grid harness.Grid
	if *config != "" {
		g, err := harness.LoadGrid(*config)
		if err != nil {
			fatal(err)
		}
		grid = g
		if grid.Refs == 0 {
			grid.Refs = *refs
		}
	} else {
		seeds, err := parseSeeds(*seedsF)
		if err != nil {
			fatal(err)
		}
		grid = harness.Grid{
			Systems:   splitList(*systemsF),
			Workloads: splitList(*workloadsF),
			Seeds:     seeds,
			Refs:      *refs,
		}
	}

	jobs, err := grid.Jobs()
	if err != nil {
		fatal(err)
	}

	runner := &harness.Runner{Workers: *workers}
	if *cacheDir != "" {
		runner.Cache = &harness.Cache{Dir: *cacheDir}
	}
	if *verbose {
		runner.Progress = os.Stderr
	}

	results, err := runner.Run(jobs)
	if err != nil {
		fatal(err)
	}

	t, err := grid.Matrix(results, *metric)
	if err != nil {
		fatal(err)
	}
	fmt.Print(t.Render())

	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	fmt.Printf("\n%d runs (%d simulated, %d from cache)\n",
		len(results), len(results)-cached, cached)

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbisweep:", err)
	os.Exit(1)
}
