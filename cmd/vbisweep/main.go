// Command vbisweep runs a design-space sweep through the experiment
// harness and emits the result matrix. Sweep axes are (system or
// hetero-memory/policy) × (workload or multiprogrammed bundle) × seed ×
// named parameter overlays × refs; grids come from flags or a small JSON
// config. Runs execute across a bounded worker pool, and an optional
// on-disk cache makes re-runs incremental (only changed cells simulate).
//
// Usage:
//
//	vbisweep -systems Native,VBI-Full -workloads mcf,graph500 -refs 100000
//	vbisweep -systems Native -workloads mcf -param l2_tlb_entries=128,512,2048
//	vbisweep -systems VBI-Full -workloads mcf -refs 50000,100000,200000
//	vbisweep -systems Native,VBI-Full -bundle wl1,wl2,pair=mcf+graph500 -refs 100000
//	vbisweep -hetero PCM-DRAM -policies Unaware,VBI -workloads sphinx3 -param hetero_epoch_refs=10000,25000
//	vbisweep -config grid.json -workers 8 -cache .vbicache -csv out.csv -json out.json
//	vbisweep -config grid.json -remote 10.0.0.7:9471,10.0.0.8:9471 -cache .vbicache
//	vbisweep -config grid.json -fleet :9600 -auth-token secret -cache .vbicache
//	vbisweep -daemon 10.0.0.1:9600 -submit -config grid.json -name fig6
//	vbisweep -daemon 10.0.0.1:9600 -watch sw-688f...-a1b2c3d4 -json out.json
//	vbisweep -daemon 10.0.0.1:9600 -cancel sw-688f...-a1b2c3d4
//	vbisweep -cache .vbicache -cache-stats
//	vbisweep -list
//
// -bundle adds multiprogrammed rows (one core per workload) alongside any
// -workloads rows: each entry is a predefined Table 2 bundle name ("wl1")
// or an inline definition "name=app1+app2+..." (see -list). Bundles sweep
// like any other axis — cross-producted with systems, seeds, refs and
// parameter overlays — but conflict with -hetero, whose jobs are
// single-core. A bundle cell's matrix value aggregates across cores
// (ipc: total throughput, dram: total accesses).
//
// -remote shards the expanded job batch across vbiworker daemons
// (internal/dist): results merge positionally and every completed shard
// lands in -cache, so the matrix is byte-identical to a local run and an
// interrupted sweep resumes incrementally. -fleet instead (or as well)
// listens for workers: vbiworker -join daemons register and heartbeat
// there, may join mid-sweep, and are evicted (their shards requeued) when
// their heartbeats stop. -auth-token (or $VBI_AUTH_TOKEN) authenticates
// both directions, and the -tls-cert/-tls-key/-tls-ca flags wrap every
// route in TLS (mTLS when -tls-ca is given; see DESIGN.md §6).
// -cache-stats and -cache-prune inspect and clean the cache directory
// without running anything.
//
// -daemon switches to client mode against a vbisweepd service instead of
// executing anything locally: -submit posts the grid (from -config or the
// axis flags) and prints the sweep id, -watch polls a sweep to completion
// and renders its matrix (honoring -json/-csv; the re-rendered JSON is
// byte-identical to a local run's), -cancel deletes it. The daemon owns
// the fleet, the journal and the cache; this process can disconnect any
// time without losing the sweep.
//
// -param may repeat; each occurrence adds one axis and the grid expands
// the cross product. Parameter names come from the system spec registry
// (-list shows them with their Table 1 defaults); system names resolve
// registered specs, so declaratively registered variants (e.g.
// "Native-128TLB") sweep like built-ins. A config file holds the same
// axes as the flags — plus inline variant-spec definitions ("specs") and
// a base parameter overlay ("overlay") — and cannot be combined with
// them:
//
//	{"systems": ["Native", "Native-128TLB"], "workloads": ["mcf"],
//	 "seeds": [1, 2], "refs": 100000,
//	 "bundles": [{"name": "wl1"}, {"name": "pair", "workloads": ["mcf", "graph500"]}],
//	 "specs": [{"name": "Native-128TLB", "base": "Native",
//	            "params": {"l2_tlb_entries": 128}}],
//	 "params": {"l2_tlb_entries": [256, 512]}}
//
// Expanded jobs are self-describing (they carry their resolved system
// spec), so a -config sweep defining variant specs runs unchanged on a
// -remote/-fleet worker fleet: the workers never need the definitions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/obs"
	"vbi/internal/stats"
	"vbi/internal/sweepd"
	"vbi/internal/workloads"
)

func main() {
	params := harness.ParamAxes{}
	tlsOpts := &dist.TLSOptions{}
	logOpts := &obs.LogOptions{}
	var (
		daemon  = flag.String("daemon", "", "vbisweepd address; switches to client mode (-submit/-watch/-cancel)")
		submitF = flag.Bool("submit", false, "submit the grid to -daemon and print the sweep id")
		watchF  = flag.String("watch", "", "poll this sweep id on -daemon until it finishes and render its matrix")
		cancelF = flag.String("cancel", "", "cancel (or, when terminal, forget) this sweep id on -daemon")
		nameF   = flag.String("name", "", "human label attached to a -submit")
	)
	var (
		systemsF    = flag.String("systems", "", "comma-separated system/spec names (default Native,VBI-Full; see -list)")
		workloadsF  = flag.String("workloads", "", "comma-separated workload names (default mcf,graph500 unless -bundle is given; see -list)")
		bundlesF    = flag.String("bundle", "", "comma-separated multiprogrammed bundles: a Table 2 name (wl1) or name=app1+app2+... (see -list)")
		seedsF      = flag.String("seeds", "", "comma-separated trace seeds (default 1)")
		refsF       = flag.String("refs", "", "measured references per run; a comma list sweeps refs as an axis (default 100000)")
		heteroF     = flag.String("hetero", "", "comma-separated heterogeneous memories (replaces -systems; see -list)")
		policiesF   = flag.String("policies", "", "comma-separated placement policies for -hetero (default all; see -list)")
		config      = flag.String("config", "", "JSON grid config (exclusive with the axis flags)")
		workers     = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache", "", "result-cache directory (empty = no cache)")
		remote      = flag.String("remote", "", "comma-separated vbiworker endpoints host:port; shards the sweep across them (empty = local pool)")
		fleet       = flag.String("fleet", "", "listen address for dynamic worker registration (vbiworker -join); may combine with -remote")
		authToken   = flag.String("auth-token", "", "shared fleet token for -remote/-fleet (default $"+dist.AuthEnv+")")
		cacheStats  = flag.Bool("cache-stats", false, "print entry/byte/version stats for -cache and exit")
		cachePrune  = flag.Bool("cache-prune", false, "delete -cache entries from other schema versions and exit")
		jobShards   = flag.Int("job-shards", 0, "decompose each job into this many intra-job shards (time slices / bundle goroutines); results stay byte-identical")
		shardApprox = flag.Bool("shard-approx", false, "sampled warm-up for -job-shards time slices: faster, estimates with a reported error bound instead of exact replay")
		shardWarmup = flag.Int("shard-warmup", 0, "per-slice warm-up refs in -shard-approx mode (0 = half the slice window)")
		metric      = flag.String("metric", harness.MetricIPC, "matrix metric: "+strings.Join(harness.Metrics(), " or "))
		jsonOut     = flag.String("json", "", "write the matrix as JSON to this file")
		csvOut      = flag.String("csv", "", "write the matrix as CSV to this file")
		list        = flag.Bool("list", false, "list systems, specs, workloads, memories, policies and parameters")
		verbose     = flag.Bool("v", false, "log every run")
		versionF    = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	flag.Var(params, "param", "parameter axis name=v1,v2,... (repeatable; see -list)")
	tlsOpts.Flags(flag.CommandLine)
	logOpts.Flags(flag.CommandLine)
	flag.Parse()

	if *versionF {
		fmt.Println(dist.VersionLine("vbisweep"))
		return
	}
	logger, err := logOpts.New(os.Stderr)
	if err != nil {
		fatal(err)
	}

	if *list {
		printList()
		return
	}

	if *cacheStats || *cachePrune {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-cache-stats/-cache-prune need -cache"))
		}
		maintainCache(&harness.Cache{Dir: *cacheDir}, *cachePrune)
		return
	}

	if err := harness.ValidateMetric(*metric); err != nil {
		fatal(err)
	}

	// Client modes against a vbisweepd daemon. -watch and -cancel need no
	// grid; -submit falls through to grid construction first.
	if *submitF || *watchF != "" || *cancelF != "" {
		if *daemon == "" {
			fatal(fmt.Errorf("-submit/-watch/-cancel need -daemon"))
		}
		modes := 0
		for _, on := range []bool{*submitF, *watchF != "", *cancelF != ""} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			fatal(fmt.Errorf("give exactly one of -submit, -watch or -cancel"))
		}
	} else if *daemon != "" {
		fatal(fmt.Errorf("-daemon needs one of -submit, -watch or -cancel"))
	}
	var client *sweepd.Client
	if *daemon != "" {
		httpc, err := tlsOpts.Client()
		if err != nil {
			fatal(err)
		}
		client = &sweepd.Client{
			Base:      dist.ApplyScheme([]string{*daemon}, tlsOpts.Scheme())[0],
			AuthToken: dist.ResolveToken(*authToken),
			HTTP:      httpc,
		}
	}
	if *cancelF != "" {
		st, err := client.Cancel(*cancelF)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sweep %s: %s\n", st.ID, st.State)
		return
	}
	if *watchF != "" {
		watchSweep(client, *watchF, *jsonOut, *csvOut)
		return
	}

	var grid harness.Grid
	if *config != "" {
		// The axis flags silently losing to -config was a footgun; make
		// the conflict explicit.
		axisFlags := map[string]bool{
			"systems": true, "workloads": true, "seeds": true, "refs": true,
			"param": true, "hetero": true, "policies": true, "bundle": true,
		}
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			if axisFlags[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fatal(fmt.Errorf("-config is exclusive with the axis flags (%s); put the axes in the config file",
				strings.Join(conflict, ", ")))
		}
		g, err := harness.LoadGrid(*config)
		if err != nil {
			fatal(err)
		}
		grid = g
		if grid.Refs == 0 && len(grid.RefsAxis) == 0 {
			grid.Refs = 100_000
		}
	} else {
		seeds, err := parseSeeds(orDefault(*seedsF, "1"))
		if err != nil {
			fatal(err)
		}
		refsAxis, err := parseInts(orDefault(*refsF, "100000"))
		if err != nil {
			fatal(fmt.Errorf("bad -refs: %w", err))
		}
		bundles, err := harness.ParseBundles(*bundlesF)
		if err != nil {
			fatal(err)
		}
		// A bundle-only sweep should not silently grow default single-core
		// rows; -workloads still adds them explicitly.
		workloadDefault := "mcf,graph500"
		if len(bundles) > 0 {
			workloadDefault = ""
		}
		grid = harness.Grid{
			Workloads: splitList(orDefault(*workloadsF, workloadDefault)),
			Bundles:   bundles,
			Seeds:     seeds,
			RefsAxis:  refsAxis,
			Params:    params,
		}
		if *heteroF != "" {
			if *systemsF != "" {
				fatal(fmt.Errorf("-hetero replaces -systems; give one or the other"))
			}
			if len(bundles) > 0 {
				fatal(fmt.Errorf("-bundle conflicts with -hetero: bundles are multiprogrammed, heterogeneous jobs are single-core"))
			}
			grid.HeteroMems = splitList(*heteroF)
			grid.Policies = splitList(*policiesF)
		} else {
			if *policiesF != "" {
				fatal(fmt.Errorf("-policies only applies to -hetero grids"))
			}
			grid.Systems = splitList(orDefault(*systemsF, "Native,VBI-Full"))
		}
	}

	if *submitF {
		resp, err := client.Submit(sweepd.SubmitRequest{
			Version: dist.ProtocolVersion,
			Name:    *nameF,
			Grid:    grid,
			Metric:  *metric,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("submitted %s (%d jobs)\nwatch with: vbisweep -daemon %s -watch %s\n",
			resp.ID, resp.Total, *daemon, resp.ID)
		return
	}

	jobs, err := grid.Jobs()
	if err != nil {
		fatal(err)
	}

	runner := &harness.Runner{Workers: *workers}
	if *cacheDir != "" {
		runner.Cache = &harness.Cache{Dir: *cacheDir}
	}
	if *verbose {
		runner.Progress = os.Stderr
	}
	var exec harness.Executor = runner
	if *remote != "" || *fleet != "" {
		token := dist.ResolveToken(*authToken)
		httpc, err := tlsOpts.Client()
		if err != nil {
			fatal(err)
		}
		coord := &dist.Coordinator{
			Endpoints: dist.ApplyScheme(dist.SplitEndpoints(*remote), tlsOpts.Scheme()),
			AuthToken: token,
			Cache:     runner.Cache,
			Local:     runner,
			Client:    httpc,
			Logger:    logger,
		}
		if *verbose {
			coord.Progress = os.Stderr
		}
		if *fleet != "" {
			tlsCfg, err := tlsOpts.ServerConfig()
			if err != nil {
				fatal(err)
			}
			reg, closer, err := dist.ServeFleet(*fleet, token, "vbisweep", tlsCfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			defer closer.Close()
			coord.Fleet = reg
		}
		exec = coord
	}
	if *jobShards > 1 {
		// Wrap whatever backend was chosen: slices scatter over the local
		// pool or the fleet like ordinary jobs, and the fold returns the
		// exact (or, with -shard-approx, estimated) parent results.
		exec = &harness.JobShards{
			Inner:      exec,
			K:          *jobShards,
			Approx:     *shardApprox,
			WarmupRefs: *shardWarmup,
			Cache:      runner.Cache,
		}
	}

	// Ctrl-C stops feeding the pool (or sharding): in-flight jobs finish
	// and cached results stay, so the next invocation resumes from there.
	// Once cancelled the handler unregisters, so a second Ctrl-C kills the
	// process instead of waiting out the in-flight simulations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	results, err := exec.Run(ctx, jobs)
	if err != nil {
		fatal(err)
	}

	t, err := grid.Matrix(results, *metric)
	if err != nil {
		fatal(err)
	}
	fmt.Print(t.Render())

	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	fmt.Printf("\n%d runs (%d simulated, %d from cache)\n",
		len(results), len(results)-cached, cached)
	if *jobShards > 1 {
		var shardNs, wallNs int64
		for _, r := range results {
			if r.Timing != nil && r.Timing.Shards > 1 {
				shardNs += r.Timing.ShardWallNanos
				wallNs += r.Timing.WallNanos
			}
		}
		// Bundles report no per-shard wall (their goroutines overlap one
		// clock), so the speedup line only covers time-sliced jobs.
		if shardNs > 0 && wallNs > 0 {
			fmt.Printf("intra-job shards: %d-way, speedup %.2fx (%.2fs of shard work in %.2fs)\n",
				*jobShards, float64(shardNs)/float64(wallNs), float64(shardNs)/1e9, float64(wallNs)/1e9)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// watchSweep polls one sweep to completion, reporting progress to stderr,
// then renders its matrix like a local run: table to stdout, optional
// -json/-csv files. The re-rendered WriteJSON output is byte-identical to
// what a serial local `vbisweep -json` writes for the same grid.
func watchSweep(client *sweepd.Client, id, jsonOut, csvOut string) {
	var last string
	for {
		sr, err := client.Get(id)
		if err != nil {
			fatal(err)
		}
		line := fmt.Sprintf("sweep %s: %s %d/%d (%d cached, %d in flight, %d queued)",
			sr.ID, sr.State, sr.Completed, sr.Total, sr.Cached, sr.InFlight, sr.Queued)
		if sr.JobsPerSecond > 0 {
			line += fmt.Sprintf(" — %.1f jobs/s, ETA %s", sr.JobsPerSecond,
				(time.Duration(sr.ETASeconds * float64(time.Second))).Round(time.Second))
		}
		if line != last {
			fmt.Fprintln(os.Stderr, line)
			last = line
		}
		switch sr.State {
		case sweepd.StateFailed:
			fatal(fmt.Errorf("sweep %s failed: %s", sr.ID, sr.Error))
		case sweepd.StateCancelled:
			fatal(fmt.Errorf("sweep %s was cancelled", sr.ID))
		case sweepd.StateDone:
			var t stats.Table
			if err := json.Unmarshal(sr.Table, &t); err != nil {
				fatal(fmt.Errorf("decode result table: %w", err))
			}
			fmt.Print(t.Render())
			fmt.Printf("\n%d runs (%d served from daemon cache)\n", sr.Total, sr.Cached)
			if sr.SimSeconds > 0 {
				fmt.Printf("worker compute: %.2fs across %d simulated jobs\n",
					sr.SimSeconds, sr.Total-sr.Cached)
			}
			if sr.Phases != nil {
				fmt.Printf("phase events: %s\n", sr.Phases)
			}
			if jsonOut != "" {
				f, err := os.Create(jsonOut)
				if err != nil {
					fatal(err)
				}
				if err := t.WriteJSON(f); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
			if csvOut != "" {
				f, err := os.Create(csvOut)
				if err != nil {
					fatal(err)
				}
				if err := t.WriteCSV(f); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
			return
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// maintainCache implements -cache-stats and -cache-prune.
func maintainCache(cache *harness.Cache, prune bool) {
	st, err := cache.Stats()
	if err != nil {
		fatal(err)
	}
	if prune {
		// Say what is about to go before deleting anything: stale entries
		// and their bytes come from the same Stats scan the -cache-stats
		// report uses.
		staleEntries, staleBytes := st.Stale(harness.Version)
		fmt.Printf("pruning %d stale entries (%d bytes) not matching %s\n",
			staleEntries, staleBytes, harness.Version)
		removed, err := cache.Prune(harness.Version)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pruned %d entries\n", removed)
		// Re-scan for the closing report: what is actually on disk after
		// the mutation, not an inference from the pre-prune scan.
		if st, err = cache.Stats(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("cache %s: %d entries, %d bytes\n", cache.Dir, st.Entries, st.Bytes)
	versions := make([]string, 0, len(st.Versions))
	for v := range st.Versions {
		versions = append(versions, v)
	}
	sort.Strings(versions)
	for _, v := range versions {
		note := ""
		if v != harness.Version {
			note = "  (stale: -cache-prune reclaims)"
		}
		fmt.Printf("  %-20s %d%s\n", v, st.Versions[v], note)
	}
}

// printList enumerates everything a sweep axis can name.
func printList() {
	harness.WriteSpecList(os.Stdout)
	fmt.Println("workloads:")
	for _, n := range workloads.Names() {
		fmt.Printf("  %s\n", n)
	}
	harness.WriteBundleList(os.Stdout)
	harness.WriteHeteroList(os.Stdout)
	harness.WriteParamList(os.Stdout)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbisweep:", err)
	os.Exit(1)
}
