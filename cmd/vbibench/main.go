// Command vbibench regenerates the paper's evaluation: every table and
// figure of §7, printed as the same rows and series the paper reports.
//
// Usage:
//
//	vbibench -exp fig6 -refs 400000
//	vbibench -exp all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vbi/internal/exp"
	"vbi/internal/stats"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: table1, table2, fig6, fig7, fig8, fig9, fig10, dram, ablation, cvt or all")
		refs    = flag.Int("refs", 400_000, "measured references per run")
		seed    = flag.Uint64("seed", 1, "trace seed")
		out     = flag.String("out", "", "also write results to this file")
		verbose = flag.Bool("v", false, "log every run")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	o := exp.Options{Refs: *refs, Seed: *seed}
	if *verbose {
		o.Progress = os.Stderr
	}

	figures := map[string]func(exp.Options) (*stats.Table, error){
		"fig6": exp.Fig6, "fig7": exp.Fig7, "fig8": exp.Fig8,
		"fig9": exp.Fig9, "fig10": exp.Fig10, "dram": exp.DRAMTable,
		"ablation": exp.AblationFlexible, "cvt": exp.CVTTable,
	}
	order := []string{"table1", "table2", "fig6", "fig7", "fig8",
		"fig9", "fig10", "dram", "ablation", "cvt"}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Fprintln(w, exp.Table1())
		case "table2":
			fmt.Fprintln(w, exp.Table2())
		default:
			fn, ok := figures[name]
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q", name))
			}
			t, err := fn(o)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(w, t.Render())
			fmt.Fprintf(w, "(%s completed in %v)\n\n", name, time.Since(start).Round(time.Second))
		}
	}

	if *which == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*which)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbibench:", err)
	os.Exit(1)
}
