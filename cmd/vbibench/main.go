// Command vbibench regenerates the paper's evaluation: every table and
// figure of §7, printed as the same rows and series the paper reports.
// Runs execute through the internal/harness worker pool; -cache makes
// repeated invocations incremental.
//
// Usage:
//
//	vbibench -exp fig6 -refs 400000
//	vbibench -exp all -out results.txt -workers 8 -cache .vbicache
//	vbibench -exp fig6 -json fig6.json -csv fig6.csv
//	vbibench -exp fig6 -param l2_tlb_entries=1024   # figures under altered hardware
//	vbibench -exp all -remote 10.0.0.7:9471,10.0.0.8:9471 -cache .vbicache
//	vbibench -exp all -fleet :9600 -auth-token secret -cache .vbicache
//	vbibench -bench-baseline BENCH_fig6.json -refs 100000
//
// -bench-baseline measures the simulator itself instead of reproducing a
// figure: it times every Figure 6 run locally (no cache, no remote) and
// writes the per-system wall-clock + refs/sec document that tracks the
// repo's performance trajectory (see BENCH_fig6.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"vbi/internal/dist"
	"vbi/internal/exp"
	"vbi/internal/harness"
	"vbi/internal/obs"
	"vbi/internal/stats"
)

func main() {
	params := harness.ParamAxes{}
	tlsOpts := &dist.TLSOptions{}
	var (
		baseline = flag.String("bench-baseline", "", "measure the Figure 6 matrix locally and write the per-system timing baseline to this file")
		profile  = flag.String("profile", "", `capture pprof profiles of this process: "cpu,heap,out=DIR" (either profile kind, comma-separated; out= names the directory)`)
		version  = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	var (
		which     = flag.String("exp", "all", "experiment: table1, table2, fig6, fig7, fig8, fig9, fig10, dram, ablation, cvt or all")
		refs      = flag.Int("refs", 400_000, "measured references per run")
		seed      = flag.Uint64("seed", 1, "trace seed")
		out       = flag.String("out", "", "also write results to this file")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cache     = flag.String("cache", "", "result-cache directory (empty = no cache)")
		jobShards = flag.Int("job-shards", 0, "decompose each job into this many intra-job shards; figure bytes stay identical")
		remote    = flag.String("remote", "", "comma-separated vbiworker endpoints host:port; shards every figure's batch across them")
		fleet     = flag.String("fleet", "", "listen address for dynamic worker registration (vbiworker -join); may combine with -remote")
		authTok   = flag.String("auth-token", "", "shared fleet token for -remote/-fleet (default $"+dist.AuthEnv+")")
		jsonOut   = flag.String("json", "", "write figure tables as JSON to this file")
		csvOut    = flag.String("csv", "", "write figure tables as CSV to this file")
		verbose   = flag.Bool("v", false, "log every run")
	)
	flag.Var(params, "param", "parameter override name=value applied to every run (repeatable; see vbisweep -list)")
	tlsOpts.Flags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(dist.VersionLine("vbibench"))
		return
	}

	overlay, err := params.Overlay()
	if err != nil {
		fatal(err)
	}

	// -profile wraps the whole invocation: CPU capture starts before the
	// first figure and the heap snapshot is taken after the last, so one
	// run yields where simulation time and memory actually go.
	profiles, err := obs.StartProfiles(*profile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vbibench: profile:", err)
		}
	}()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	// Exports accumulate across figures: -json writes one document (an
	// array of {experiment, table} objects), -csv one file per figure
	// (suffixed with the figure name when several run), so the outputs
	// stay parseable under -exp all.
	type namedTable struct {
		Experiment string       `json:"experiment"`
		Table      *stats.Table `json:"table"`
	}
	// Initialized non-nil so -json writes "[]" (not "null") when only the
	// static tables run.
	exported := []namedTable{}

	// Ctrl-C stops the current figure at job (or shard) granularity:
	// completed work stays cached, so the next invocation resumes there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	o := exp.Options{Refs: *refs, Seed: *seed, Workers: *workers, CacheDir: *cache,
		Params: overlay, JobShards: *jobShards, Context: ctx}
	if *verbose {
		o.Progress = os.Stderr
	}

	if *baseline != "" {
		// The baseline always simulates locally (cache hits and remote
		// results carry no timing), so it ignores -cache/-remote/-fleet.
		b, err := exp.BenchBaseline(o)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*baseline)
		if err != nil {
			fatal(err)
		}
		if err := b.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vbibench: baseline written to %s (%d systems, %d refs each over %d workloads)\n",
			*baseline, len(b.Systems), b.Refs, b.Workloads)
		return
	}

	if *remote != "" || *fleet != "" {
		token := dist.ResolveToken(*authTok)
		httpc, err := tlsOpts.Client()
		if err != nil {
			fatal(err)
		}
		coord := &dist.Coordinator{
			Endpoints: dist.ApplyScheme(dist.SplitEndpoints(*remote), tlsOpts.Scheme()),
			AuthToken: token, Progress: o.Progress, Client: httpc}
		if *cache != "" {
			coord.Cache = &harness.Cache{Dir: *cache}
		}
		// Local fallback mirrors vbisweep: an effectively empty -remote
		// (e.g. ",") still honors -workers/-cache instead of a default pool.
		coord.Local = &harness.Runner{Workers: *workers, Cache: coord.Cache, Progress: o.Progress}
		if *fleet != "" {
			tlsCfg, err := tlsOpts.ServerConfig()
			if err != nil {
				fatal(err)
			}
			reg, closer, err := dist.ServeFleet(*fleet, token, "vbibench", tlsCfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			defer closer.Close()
			coord.Fleet = reg
		}
		o.Executor = coord
	}

	figures := map[string]func(exp.Options) (*stats.Table, error){
		"fig6": exp.Fig6, "fig7": exp.Fig7, "fig8": exp.Fig8,
		"fig9": exp.Fig9, "fig10": exp.Fig10, "dram": exp.DRAMTable,
		"ablation": exp.AblationFlexible, "cvt": exp.CVTTable,
	}
	order := []string{"table1", "table2", "fig6", "fig7", "fig8",
		"fig9", "fig10", "dram", "ablation", "cvt"}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Fprintln(w, exp.Table1())
		case "table2":
			fmt.Fprintln(w, exp.Table2())
		default:
			fn, ok := figures[name]
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (want %s or all)",
					name, strings.Join(order, ", ")))
			}
			t, err := fn(o)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(w, t.Render())
			fmt.Fprintf(w, "(%s completed in %v)\n\n", name, time.Since(start).Round(time.Second))
			exported = append(exported, namedTable{Experiment: name, Table: t})
		}
	}

	if *which == "all" {
		for _, name := range order {
			run(name)
		}
	} else {
		run(*which)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(exported); err != nil {
			fatal(fmt.Errorf("json export: %w", err))
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *csvOut != "" {
		if len(exported) == 0 {
			fmt.Fprintf(os.Stderr, "vbibench: no figure tables ran; %s not written\n", *csvOut)
		}
		for _, nt := range exported {
			path := *csvOut
			if len(exported) > 1 {
				ext := filepath.Ext(path)
				path = strings.TrimSuffix(path, ext) + "-" + nt.Experiment + ext
			}
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := nt.Table.WriteCSV(f); err != nil {
				fatal(fmt.Errorf("%s: csv export: %w", nt.Experiment, err))
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbibench:", err)
	os.Exit(1)
}
