package main

import (
	"bytes"
	"testing"

	"vbi/internal/workloads"
)

// TestDumpDeterministic is the tracegen determinism regression: two
// invocations with the same -workload and -seed must emit byte-identical
// trace dumps. Every simulated system replays the same profile stream, so
// any nondeterminism here would silently break the harness's
// byte-identical-results contract (and the result cache) one layer down.
func TestDumpDeterministic(t *testing.T) {
	for _, name := range []string{"mcf", "graph500"} {
		prof := workloads.MustGet(name)
		for _, seed := range []uint64{1, 7} {
			var a, b bytes.Buffer
			dumpTrace(&a, prof, seed, 20_000)
			dumpTrace(&b, prof, seed, 20_000)
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("%s seed %d: two dumps of the same stream differ", name, seed)
			}
			if a.Len() == 0 {
				t.Errorf("%s seed %d: empty dump", name, seed)
			}
		}
		// Different seeds must give different streams — otherwise the
		// seeds axis of a sweep would be six copies of one column.
		var s1, s2 bytes.Buffer
		dumpTrace(&s1, prof, 1, 20_000)
		dumpTrace(&s2, prof, 2, 20_000)
		if bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Errorf("%s: seeds 1 and 2 emitted identical streams", name)
		}
	}
}

// TestSummaryDeterministic pins the summary path the same way: identical
// (workload, seed, n) must render identical bytes.
func TestSummaryDeterministic(t *testing.T) {
	prof := workloads.MustGet("sphinx3")
	var a, b bytes.Buffer
	summarize(&a, prof, 3, 20_000)
	summarize(&b, prof, 3, 20_000)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two summaries of the same stream differ:\n%s\n---\n%s", a.String(), b.String())
	}
}
