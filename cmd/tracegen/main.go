// Command tracegen inspects the synthetic workload profiles: it generates
// a reference stream and summarizes its character (per-structure shares,
// page and line working sets, write fraction, dependence fraction) or dumps
// raw references for external tools.
//
// Usage:
//
//	tracegen -workload mcf -n 1000000
//	tracegen -workload milc -n 1000 -dump
//	tracegen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vbi/internal/dist"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "mcf", "benchmark name (see -list)")
		n        = flag.Int("n", 1_000_000, "references to generate")
		seed     = flag.Uint64("seed", 1, "trace seed")
		dump     = flag.Bool("dump", false, "dump raw references (struct, offset, W/R, dep) instead of a summary")
		list     = flag.Bool("list", false, "list registered workload profiles")
		version  = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(dist.VersionLine("tracegen"))
		return
	}

	if *list {
		for _, name := range workloads.Names() {
			p := workloads.MustGet(name)
			fmt.Printf("%-16s %5d MB  %2d structures\n", name, p.Footprint()>>20, len(p.Structs))
		}
		return
	}

	prof, err := workloads.Get(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\nvalid workloads: %s\n",
			err, strings.Join(workloads.Names(), ", "))
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *dump {
		dumpTrace(w, prof, *seed, *n)
		return
	}
	summarize(w, prof, *seed, *n)
}

// dumpTrace writes n raw references of the profile's seeded stream, one
// per line. The output is a pure function of (profile, seed, n): trace
// generation is deterministic, which is what makes every simulated system
// see the identical reference stream (and what the determinism regression
// test pins).
func dumpTrace(w io.Writer, prof trace.Profile, seed uint64, n int) {
	g := trace.NewGenerator(prof, seed)
	for i := 0; i < n; i++ {
		r := g.Next()
		rw := "R"
		if r.Op.Write {
			rw = "W"
		}
		dep := ""
		if r.Op.Dep {
			dep = " dep"
		}
		fmt.Fprintf(w, "%s %#x %s gap=%d%s\n",
			prof.Structs[r.StructIdx].Name, r.Offset, rw, r.Op.Gap, dep)
	}
}

// summarize writes the per-structure character summary of n references.
func summarize(w io.Writer, prof trace.Profile, seed uint64, n int) {
	g := trace.NewGenerator(prof, seed)
	type sstat struct {
		refs   int
		writes int
		deps   int
		pages  map[uint64]bool
		lines  map[uint64]bool
	}
	perStruct := make([]sstat, len(prof.Structs))
	for i := range perStruct {
		perStruct[i].pages = make(map[uint64]bool)
		perStruct[i].lines = make(map[uint64]bool)
	}
	var gapTotal uint64
	for i := 0; i < n; i++ {
		r := g.Next()
		st := &perStruct[r.StructIdx]
		st.refs++
		if r.Op.Write {
			st.writes++
		}
		if r.Op.Dep {
			st.deps++
		}
		st.pages[r.Offset>>12] = true
		st.lines[r.Offset>>6] = true
		gapTotal += uint64(r.Op.Gap)
	}

	fmt.Fprintf(w, "workload:  %s (%d MB footprint, %d structures)\n",
		prof.Name, prof.Footprint()>>20, len(prof.Structs))
	fmt.Fprintf(w, "refs:      %d  (%.0f per 1000 instrs)\n", n,
		float64(n)*1000/float64(uint64(n)+gapTotal))
	fmt.Fprintf(w, "%-16s %8s %7s %7s %10s %10s %9s\n",
		"structure", "share", "writes", "deps", "pages", "lines", "size")
	for i, s := range prof.Structs {
		st := perStruct[i]
		if st.refs == 0 {
			continue
		}
		fmt.Fprintf(w, "%-16s %7.1f%% %6.1f%% %6.1f%% %10d %10d %6d MB\n",
			s.Name,
			100*float64(st.refs)/float64(n),
			100*float64(st.writes)/float64(st.refs),
			100*float64(st.deps)/float64(st.refs),
			len(st.pages), len(st.lines), s.Size>>20)
	}
}
