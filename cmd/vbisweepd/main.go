// Command vbisweepd is the long-running sweep service: a daemon that
// accepts many sweeps over a JSON HTTP API, journals them durably,
// schedules their shards fairly across one dynamic vbiworker fleet, and
// exposes the whole plane's health on /status and /metrics.
//
// Where `vbisweep -fleet` lives for exactly one sweep, vbisweepd owns a
// persistent queue: every POST /sweeps is journaled (as its canonical
// self-describing job list) before the submit returns, so a daemon killed
// mid-sweep reloads its queue on restart and resumes from the shared
// result cache. Scheduling round-robins one shard per active sweep per
// pull, so a small sweep submitted behind a huge one starts completing
// immediately. An empty fleet queues work instead of failing it.
//
// API (all routes share -auth-token and the TLS flags):
//
//	POST   /sweeps       submit {"version", "name", "grid", "metric"}
//	GET    /sweeps       list every sweep's progress
//	GET    /sweeps/{id}  one sweep's progress + result table when done
//	DELETE /sweeps/{id}  cancel an active sweep / forget a terminal one
//	GET    /status       fleet membership + per-sweep progress (JSON)
//	GET    /metrics      Prometheus text exposition
//	POST   /register     vbiworker -join heartbeats
//	POST   /leave        vbiworker graceful-drain deregistration
//
// Workers join with `vbiworker -join <addr>` (dynamic, heartbeating) or
// are listed statically with -remote. Clients use `vbisweep -daemon`
// with -submit/-watch/-cancel, or plain curl.
//
// Usage:
//
//	vbisweepd -addr 127.0.0.1:9600 -journal /var/lib/vbisweepd -cache /var/tmp/vbicache
//	vbisweepd -addr :9600 -auth-token secret -journal ./sweepd -cache ./vbicache
//	vbisweepd -addr :9600 -tls-cert d.pem -tls-key d.key -tls-ca fleet-ca.pem ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/obs"
	"vbi/internal/sweepd"
)

func main() {
	tlsOpts := &dist.TLSOptions{}
	logOpts := &obs.LogOptions{}
	var (
		addr      = flag.String("addr", "127.0.0.1:9600", "listen address for the API and the fleet routes")
		journal   = flag.String("journal", ".vbisweepd", "journal directory: one record per sweep, replayed on restart")
		cacheDir  = flag.String("cache", "", "shared result-cache directory (strongly recommended: it is what makes restarts incremental)")
		remote    = flag.String("remote", "", "comma-separated static vbiworker endpoints host:port (dynamic workers use vbiworker -join instead)")
		authToken = flag.String("auth-token", "", "shared token gating every route and sent to workers (default $"+dist.AuthEnv+")")
		shard     = flag.Int("shard", 4, "jobs per dispatched shard")
		timeout   = flag.Duration("timeout", 10*time.Minute, "per-shard worker request timeout")
		version   = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	tlsOpts.Flags(flag.CommandLine)
	logOpts.Flags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(dist.VersionLine("vbisweepd"))
		return
	}
	logger, err := logOpts.New(os.Stderr)
	if err != nil {
		fatal(err)
	}
	token := dist.ResolveToken(*authToken)

	tlsCfg, err := tlsOpts.ServerConfig()
	if err != nil {
		fatal(err)
	}
	client, err := tlsOpts.Client()
	if err != nil {
		fatal(err)
	}
	if token == "" && tlsCfg == nil && dist.NonLoopbackBind(*addr) {
		fmt.Fprintf(os.Stderr, "vbisweepd: warning: %s is reachable beyond loopback with no -auth-token or TLS; any host can submit sweeps or serve shards\n", *addr)
	}

	srv := &sweepd.Server{
		Dir:       *journal,
		Fleet:     &dist.Registry{Log: os.Stderr},
		AuthToken: token,
		ShardSize: *shard,
		Timeout:   *timeout,
		Client:    client,
		Logger:    logger,
	}
	if *cacheDir != "" {
		srv.Cache = &harness.Cache{Dir: *cacheDir}
	} else {
		fmt.Fprintln(os.Stderr, "vbisweepd: warning: no -cache; a restart will re-simulate every incomplete sweep from scratch")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Start(ctx); err != nil {
		fatal(err)
	}

	// Static -remote workers are probed once for their pool width and
	// pre-registered; unreachable ones still register at weight 1 so the
	// scheduler picks them up when they come back (static members are
	// never TTL-evicted).
	for _, ep := range dist.ApplyScheme(dist.SplitEndpoints(*remote), tlsOpts.Scheme()) {
		weight := 1
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		h, err := dist.Probe(pctx, client, ep, token)
		cancel()
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "vbisweepd: warning: static worker %s unreachable (%v); registered at weight 1\n", ep, err)
		case h.Version != dist.ProtocolVersion:
			fmt.Fprintf(os.Stderr, "vbisweepd: warning: static worker %s runs %s, daemon %s; it will be dropped at first dispatch\n", ep, h.Version, dist.ProtocolVersion)
		default:
			weight = h.Workers
		}
		srv.Fleet.Add(ep, weight, true, "")
	}

	httpSrv, bound, err := dist.Serve(*addr, srv.Handler(), tlsCfg)
	if err != nil {
		fatal(err)
	}
	scheme := "http"
	if tlsCfg != nil {
		scheme = "https"
	}
	// Print both resolved versions: the wire protocol the fleet must match
	// and the harness schema the cache and journal are keyed under. They
	// are the first things to compare when a fleet refuses to mix.
	fmt.Fprintf(os.Stderr, "vbisweepd: protocol %s, harness cache %s, serving on %s://%s (journal %s)\n",
		dist.ProtocolVersion, harness.Version, scheme, bound, *journal)

	<-ctx.Done()
	stop()
	// In-flight shards are abandoned (workers finish them into the shared
	// cache; the journal resumes the sweeps on the next start), so
	// shutdown never blocks on a long simulation.
	httpSrv.Close()
	fmt.Fprintln(os.Stderr, "vbisweepd: shut down (journal retained; restart resumes pending sweeps)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbisweepd:", err)
	os.Exit(1)
}
