// Command vbilint runs the repo's invariant analyzers (internal/lint)
// over Go packages and exits non-zero on any finding. It is the machine
// check behind the determinism contract: identical jobs produce
// byte-identical results everywhere.
//
// Usage:
//
//	vbilint [-analyzers maporder,wiretags] [packages...]
//
// Packages default to ./... . Each finding prints as
//
//	file:line:col: message [analyzer]
//
// and can be suppressed — with a mandatory reason — by placing
//
//	//vbi:allow <analyzer> <reason>
//
// on the flagged line or the line above it. See DESIGN.md §7 for the
// catalogue of enforced invariants.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vbi/internal/dist"
	"vbi/internal/lint"
	"vbi/internal/lint/load"
)

func main() {
	var (
		only    = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		version = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(dist.VersionLine("vbilint"))
		return
	}

	if *list {
		for _, a := range lint.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbilint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbilint:", err)
		os.Exit(2)
	}
	pkgs, err := load.New(dir).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbilint:", err)
		os.Exit(2)
	}

	findings, err := lint.RunSuite(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vbilint:", err)
		os.Exit(2)
	}
	shown := 0
	for _, f := range findings {
		if len(selected) > 0 && !selected[f.Analyzer] && f.Analyzer != "vbilint" {
			continue
		}
		fmt.Println(f)
		shown++
	}
	if shown > 0 {
		fmt.Fprintf(os.Stderr, "vbilint: %d finding(s)\n", shown)
		os.Exit(1)
	}
}

func selectAnalyzers(list string) (map[string]bool, error) {
	if list == "" {
		return nil, nil
	}
	selected := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if lint.Lookup(name) == nil {
			return nil, fmt.Errorf("unknown analyzer %q (run vbilint -list)", name)
		}
		selected[name] = true
	}
	return selected, nil
}
