// Command vbiworker serves harness job batches to a remote coordinator
// (vbisweep -remote / -fleet, vbibench -remote / -fleet, vbisweepd). It
// wraps the ordinary local worker pool in the internal/dist HTTP
// protocol: POST /run takes a batch of canonical job specs and returns
// positional results; GET /healthz advertises the binary's harness
// version and pool width (the coordinator's shard-planning weight). A
// worker whose version differs from the coordinator's refuses every
// shard, so a stale binary can never contribute results from a different
// timing model.
//
// With -join the worker also registers itself against a coordinator's
// fleet listener and heartbeats there, so it can join a sweep already in
// flight and rejoin after a restart; without -join it only serves the
// static -remote path. -auth-token (or $VBI_AUTH_TOKEN) gates the
// worker's own endpoints and authenticates its registrations; the
// -tls-cert/-tls-key/-tls-ca flags serve the endpoints over TLS (mTLS
// when -tls-ca is given) and secure the -join heartbeats.
//
// Shutdown is a graceful drain: the first SIGTERM/SIGINT flips the worker
// to draining (the handshake advertises it, new shards get 503 and are
// requeued elsewhere), deregisters it from the -join fleet immediately
// (no TTL wait), and then waits for in-flight shards to finish and
// report. A second signal force-quits, abandoning in-flight work to the
// coordinator's requeue.
//
// Usage:
//
//	vbiworker -addr :9471
//	vbiworker -addr 10.0.0.7:9471 -workers 16 -cache /var/tmp/vbicache -v
//	vbiworker -addr :9471 -join 10.0.0.1:9600 -auth-token secret
//	vbiworker -addr :9471 -join 10.0.0.1:9600 -tls-cert w.pem -tls-key w.key -tls-ca fleet-ca.pem
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/obs"
)

func main() {
	tlsOpts := &dist.TLSOptions{}
	logOpts := &obs.LogOptions{}
	var (
		addr      = flag.String("addr", ":9471", "listen address")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache", "", "result-cache directory (empty = no cache)")
		jobShards = flag.Int("job-shards", 0, "decompose each arriving whole job into this many intra-job shards over the local pool; result bytes stay identical")
		join      = flag.String("join", "", "coordinator fleet address (vbisweep -fleet / vbisweepd) to register with and heartbeat")
		advertise = flag.String("advertise", "", "address advertised on -join for shard requests (default -addr; an empty host is filled in by the coordinator)")
		authToken = flag.String("auth-token", "", "shared fleet token gating this worker's endpoints and sent on -join (default $"+dist.AuthEnv+")")
		drainWait = flag.Duration("drain-timeout", 15*time.Minute, "how long a drain waits for in-flight shards before force-quitting")
		verbose   = flag.Bool("v", false, "also log every individual run (shard activity is always logged)")
		pprof     = flag.Bool("pprof", false, "serve /debug/pprof/ on the worker's (auth-gated) listener for live profiling")
		version   = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	tlsOpts.Flags(flag.CommandLine)
	logOpts.Flags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(dist.VersionLine("vbiworker"))
		return
	}
	logger, err := logOpts.New(os.Stderr)
	if err != nil {
		fatal(err)
	}
	token := dist.ResolveToken(*authToken)

	tlsCfg, err := tlsOpts.ServerConfig()
	if err != nil {
		fatal(err)
	}
	if token == "" && tlsCfg == nil && dist.NonLoopbackBind(*addr) {
		fmt.Fprintf(os.Stderr, "vbiworker: warning: %s is reachable beyond loopback with no -auth-token or TLS; any host can submit shards\n", *addr)
	}

	runner := &harness.Runner{Workers: *workers}
	if *cacheDir != "" {
		runner.Cache = &harness.Cache{Dir: *cacheDir}
	}
	w := &dist.Worker{Runner: runner, AuthToken: token, Logger: logger, Pprof: *pprof,
		JobShards: *jobShards}
	if *verbose {
		runner.Progress = os.Stderr
	}

	srv := &http.Server{Addr: *addr, Handler: w.Handler(), TLSConfig: tlsCfg}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var joiner *dist.Joiner
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = *addr
		}
		joiner = &dist.Joiner{
			Coordinator: dist.ApplyScheme([]string{*join}, tlsOpts.Scheme())[0],
			// A TLS worker must be dialed back over https; bake the scheme
			// into the advertised address.
			Advertise: dist.ApplyScheme([]string{adv}, tlsOpts.Scheme())[0],
			Workers:   w.PoolWidth(),
			AuthToken: token,
			Log:       os.Stderr,
		}
		if httpc, err := tlsOpts.Client(); err != nil {
			fatal(err)
		} else {
			joiner.Client = httpc
		}
		go func() {
			if err := joiner.Run(ctx); err != nil {
				// A 401/412 rejection is operator error; surface it and die
				// instead of serving a fleet that will never use us.
				fmt.Fprintln(os.Stderr, "vbiworker:", err)
				srv.Close()
				os.Exit(1)
			}
		}()
	}

	// Graceful drain: first signal stops new work (503 + Draining in the
	// handshake), leaves the fleet, and waits out in-flight shards so
	// their results are reported (and cached) rather than re-simulated; a
	// second signal — or the drain timeout — abandons them to the
	// coordinator's requeue.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		w.SetDraining(true)
		fmt.Fprintln(os.Stderr, "vbiworker: draining: refusing new shards, finishing in-flight ones (signal again to force quit)")
		if joiner != nil {
			joiner.Leave(context.Background())
		}
		cancel() // stop the heartbeat loop
		done := make(chan struct{})
		go func() {
			sctx, scancel := context.WithTimeout(context.Background(), *drainWait)
			defer scancel()
			srv.Shutdown(sctx)
			close(done)
		}()
		select {
		case <-sigc:
			fmt.Fprintln(os.Stderr, "vbiworker: force quit; in-flight shards abandoned to the coordinator's requeue")
		case <-done:
			fmt.Fprintln(os.Stderr, "vbiworker: drain complete")
		}
		srv.Close()
	}()

	scheme := "http"
	if tlsCfg != nil {
		scheme = "https"
	}
	// Print both resolved versions: the wire protocol the coordinator
	// checks at handshake and the harness schema local cache entries are
	// keyed under.
	fmt.Fprintf(os.Stderr, "vbiworker: protocol %s, harness cache %s, listening on %s://%s\n",
		dist.ProtocolVersion, harness.Version, scheme, *addr)
	var serveErr error
	if tlsCfg != nil {
		// Certificates come from TLSConfig; the file arguments are unused.
		serveErr = srv.ListenAndServeTLS("", "")
	} else {
		serveErr = srv.ListenAndServe()
	}
	if serveErr != nil && serveErr != http.ErrServerClosed {
		fatal(serveErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbiworker:", err)
	os.Exit(1)
}
