// Command vbiworker serves harness job batches to a remote coordinator
// (vbisweep -remote / vbibench -remote). It wraps the ordinary local
// worker pool in the internal/dist HTTP protocol: POST /run takes a batch
// of canonical job specs and returns positional results; GET /healthz
// advertises the binary's harness version and pool width (the
// coordinator's shard-planning weight). A worker whose version differs
// from the coordinator's refuses every shard, so a stale binary can never
// contribute results from a different timing model.
//
// Usage:
//
//	vbiworker -addr :9471
//	vbiworker -addr 10.0.0.7:9471 -workers 16 -cache /var/tmp/vbicache -v
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"vbi/internal/dist"
	"vbi/internal/harness"
)

func main() {
	var (
		addr     = flag.String("addr", ":9471", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache", "", "result-cache directory (empty = no cache)")
		verbose  = flag.Bool("v", false, "also log every individual run (shard activity is always logged)")
	)
	flag.Parse()

	runner := &harness.Runner{Workers: *workers}
	if *cacheDir != "" {
		runner.Cache = &harness.Cache{Dir: *cacheDir}
	}
	w := &dist.Worker{Runner: runner, Log: os.Stderr}
	if *verbose {
		runner.Progress = os.Stderr
	}

	srv := &http.Server{Addr: *addr, Handler: w.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Unregister the handler first so a second signal force-kills,
		// then drop every connection: in-flight shards are abandoned (the
		// coordinator requeues them) because a worker shutdown must never
		// block on a long simulation.
		stop()
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "vbiworker: %s listening on %s\n", harness.Version, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "vbiworker:", err)
		os.Exit(1)
	}
}
