// Command vbiworker serves harness job batches to a remote coordinator
// (vbisweep -remote / -fleet, vbibench -remote / -fleet). It wraps the
// ordinary local worker pool in the internal/dist HTTP protocol: POST
// /run takes a batch of canonical job specs and returns positional
// results; GET /healthz advertises the binary's harness version and pool
// width (the coordinator's shard-planning weight). A worker whose version
// differs from the coordinator's refuses every shard, so a stale binary
// can never contribute results from a different timing model.
//
// With -join the worker also registers itself against a coordinator's
// fleet listener and heartbeats there, so it can join a sweep already in
// flight and rejoin after a restart; without -join it only serves the
// static -remote path. -auth-token (or $VBI_AUTH_TOKEN) gates the
// worker's own endpoints and authenticates its registrations.
//
// Usage:
//
//	vbiworker -addr :9471
//	vbiworker -addr 10.0.0.7:9471 -workers 16 -cache /var/tmp/vbicache -v
//	vbiworker -addr :9471 -join 10.0.0.1:9600 -auth-token secret
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"vbi/internal/dist"
	"vbi/internal/harness"
)

func main() {
	var (
		addr      = flag.String("addr", ":9471", "listen address")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache", "", "result-cache directory (empty = no cache)")
		join      = flag.String("join", "", "coordinator fleet address (vbisweep -fleet) to register with and heartbeat")
		advertise = flag.String("advertise", "", "address advertised on -join for shard requests (default -addr; an empty host is filled in by the coordinator)")
		authToken = flag.String("auth-token", "", "shared fleet token gating this worker's endpoints and sent on -join (default $"+dist.AuthEnv+")")
		verbose   = flag.Bool("v", false, "also log every individual run (shard activity is always logged)")
	)
	flag.Parse()
	token := dist.ResolveToken(*authToken)

	if token == "" && dist.NonLoopbackBind(*addr) {
		fmt.Fprintf(os.Stderr, "vbiworker: warning: %s is reachable beyond loopback with no -auth-token; any host can submit shards\n", *addr)
	}

	runner := &harness.Runner{Workers: *workers}
	if *cacheDir != "" {
		runner.Cache = &harness.Cache{Dir: *cacheDir}
	}
	w := &dist.Worker{Runner: runner, AuthToken: token, Log: os.Stderr}
	if *verbose {
		runner.Progress = os.Stderr
	}

	srv := &http.Server{Addr: *addr, Handler: w.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Unregister the handler first so a second signal force-kills,
		// then drop every connection: in-flight shards are abandoned (the
		// coordinator requeues them) because a worker shutdown must never
		// block on a long simulation.
		stop()
		srv.Close()
	}()

	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = *addr
		}
		j := &dist.Joiner{
			Coordinator: *join,
			Advertise:   adv,
			Workers:     w.PoolWidth(),
			AuthToken:   token,
			Log:         os.Stderr,
		}
		go func() {
			if err := j.Run(ctx); err != nil {
				// A 401/412 rejection is operator error; surface it and die
				// instead of serving a fleet that will never use us.
				fmt.Fprintln(os.Stderr, "vbiworker:", err)
				srv.Close()
				os.Exit(1)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "vbiworker: %s listening on %s\n", dist.ProtocolVersion, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "vbiworker:", err)
		os.Exit(1)
	}
}
