// Command vbisim runs one simulated system on one workload and reports
// IPC, DRAM traffic and the system-specific event counters. The -system
// flag resolves registered system specs (built-in kinds and declaratively
// registered variants), and -param overlays individual Table 1 knobs.
//
// Usage:
//
//	vbisim -system VBI-Full -workload mcf -refs 1000000
//	vbisim -system Native -param l2_tlb_entries=128 -workload mcf
//	vbisim -list
//	vbisim -hetero PCM-DRAM -policy VBI -workload sphinx3
package main

import (
	"flag"
	"fmt"
	"os"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

func main() {
	params := harness.ParamAxes{}
	var (
		sysName  = flag.String("system", "Native", "system spec to simulate (see -list)")
		workload = flag.String("workload", "mcf", "benchmark name (see -list)")
		refs     = flag.Int("refs", 400_000, "measured memory references")
		seed     = flag.Uint64("seed", 1, "trace seed")
		list     = flag.Bool("list", false, "list systems, workloads and parameters")
		hetero   = flag.String("hetero", "", "heterogeneous memory: PCM-DRAM or TL-DRAM")
		policy   = flag.String("policy", "VBI", "placement policy: Unaware, VBI or IDEAL")
		version  = flag.Bool("version", false, "print protocol and harness versions, then exit")
	)
	flag.Var(params, "param", "parameter override name=value (repeatable; see -list)")
	flag.Parse()
	if *version {
		fmt.Println(dist.VersionLine("vbisim"))
		return
	}

	if *list {
		harness.WriteSpecList(os.Stdout)
		fmt.Println("workloads:")
		for _, n := range workloads.Names() {
			p := workloads.MustGet(n)
			fmt.Printf("  %-14s %4d MB, %d structures\n", n, p.Footprint()>>20, len(p.Structs))
		}
		harness.WriteHeteroList(os.Stdout)
		harness.WriteParamList(os.Stdout)
		return
	}

	prof, err := workloads.Get(*workload)
	if err != nil {
		fatal(err)
	}
	overlay, err := params.Overlay()
	if err != nil {
		fatal(err)
	}

	var res system.RunResult
	if *hetero != "" {
		// Heterogeneous runs are always VBI-2 over two zones; an explicit
		// -system would be silently ignored, so reject the combination
		// (mirroring harness.Job.Validate).
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "system" {
				fatal(fmt.Errorf("-system %s conflicts with -hetero %s: heterogeneous runs are always VBI-2", *sysName, *hetero))
			}
		})
		mem, err := system.ParseHeteroMem(*hetero)
		if err != nil {
			fatal(err)
		}
		pol, err := system.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		m, err := system.NewHetero(system.HeteroConfig{
			Mem: mem, Policy: pol, Refs: *refs, Seed: *seed,
			Params: overlay}, prof)
		if err != nil {
			fatal(err)
		}
		if res, err = m.Run(); err != nil {
			fatal(err)
		}
	} else {
		spec, err := system.ResolveSpec(*sysName)
		if err != nil {
			fatal(err)
		}
		cfg, err := spec.Config()
		if err != nil {
			fatal(err)
		}
		cfg.Refs, cfg.Seed = *refs, *seed
		cfg.Params = system.Overlay(cfg.Params, overlay)
		m, err := system.New(cfg, prof)
		if err != nil {
			fatal(err)
		}
		if res, err = m.Run(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("system:    %s\n", res.System)
	fmt.Printf("workload:  %s\n", res.Workload)
	fmt.Printf("refs:      %d\n", res.MemRefs)
	fmt.Printf("instrs:    %d\n", res.Instrs)
	fmt.Printf("cycles:    %d\n", res.Cycles)
	fmt.Printf("IPC:       %.4f\n", res.IPC)
	fmt.Printf("DRAM:      %d accesses\n", res.DRAMAccesses)
	if len(res.Extra) > 0 {
		fmt.Println("counters:")
		fmt.Print(res.Extra.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbisim:", err)
	os.Exit(1)
}
