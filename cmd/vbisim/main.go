// Command vbisim runs one simulated system on one workload and reports
// IPC, DRAM traffic and the system-specific event counters.
//
// Usage:
//
//	vbisim -system VBI-Full -workload mcf -refs 1000000
//	vbisim -list
//	vbisim -hetero PCM-DRAM -policy VBI -workload sphinx3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vbi/internal/system"
	"vbi/internal/workloads"
)

var systems = map[string]system.Kind{}

func init() {
	for _, k := range system.Kinds() {
		systems[strings.ToLower(k.String())] = k
	}
}

func main() {
	var (
		sysName  = flag.String("system", "Native", "system to simulate (see -list)")
		workload = flag.String("workload", "mcf", "benchmark name (see -list)")
		refs     = flag.Int("refs", 400_000, "measured memory references")
		seed     = flag.Uint64("seed", 1, "trace seed")
		list     = flag.Bool("list", false, "list systems and workloads")
		hetero   = flag.String("hetero", "", "heterogeneous memory: PCM-DRAM or TL-DRAM")
		policy   = flag.String("policy", "VBI", "placement policy: Unaware, VBI or IDEAL")
	)
	flag.Parse()

	if *list {
		fmt.Println("systems:")
		for _, k := range system.Kinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("workloads:")
		for _, n := range workloads.Names() {
			p := workloads.MustGet(n)
			fmt.Printf("  %-14s %4d MB, %d structures\n", n, p.Footprint()>>20, len(p.Structs))
		}
		return
	}

	prof, err := workloads.Get(*workload)
	if err != nil {
		fatal(err)
	}

	var res system.RunResult
	if *hetero != "" {
		mem := system.HeteroPCMDRAM
		if strings.EqualFold(*hetero, "TL-DRAM") {
			mem = system.HeteroTLDRAM
		}
		pol := system.PolicyVBI
		switch strings.ToLower(*policy) {
		case "unaware":
			pol = system.PolicyUnaware
		case "ideal":
			pol = system.PolicyIdeal
		}
		m, err := system.NewHetero(system.HeteroConfig{
			Mem: mem, Policy: pol, Refs: *refs, Seed: *seed}, prof)
		if err != nil {
			fatal(err)
		}
		if res, err = m.Run(); err != nil {
			fatal(err)
		}
	} else {
		kind, ok := systems[strings.ToLower(*sysName)]
		if !ok {
			fatal(fmt.Errorf("unknown system %q (try -list)", *sysName))
		}
		m, err := system.New(system.Config{Kind: kind, Refs: *refs, Seed: *seed}, prof)
		if err != nil {
			fatal(err)
		}
		if res, err = m.Run(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("system:    %s\n", res.System)
	fmt.Printf("workload:  %s\n", res.Workload)
	fmt.Printf("refs:      %d\n", res.MemRefs)
	fmt.Printf("instrs:    %d\n", res.Instrs)
	fmt.Printf("cycles:    %d\n", res.Cycles)
	fmt.Printf("IPC:       %.4f\n", res.IPC)
	fmt.Printf("DRAM:      %d accesses\n", res.DRAMAccesses)
	if len(res.Extra) > 0 {
		fmt.Println("counters:")
		fmt.Print(res.Extra.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbisim:", err)
	os.Exit(1)
}
